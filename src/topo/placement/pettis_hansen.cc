#include "topo/placement/pettis_hansen.hh"

#include <algorithm>
#include <numeric>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/placement/decision_log.hh"
#include "topo/placement/merge_graph.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Chain of procedures with cached line-aligned byte positions. */
struct Chain
{
    std::vector<ProcId> procs;
    /** Line-aligned start offset of each procedure within the chain. */
    std::vector<std::uint64_t> starts;
    std::uint64_t length = 0; // line-aligned total bytes
};

std::uint64_t
alignedSize(const Program &program, ProcId id, std::uint32_t line_bytes)
{
    const std::uint64_t size = program.proc(id).size_bytes;
    return (size + line_bytes - 1) / line_bytes * line_bytes;
}

/** Rebuild the cached positions of a chain. */
void
reindex(Chain &chain, const Program &program, std::uint32_t line_bytes)
{
    chain.starts.resize(chain.procs.size());
    std::uint64_t cursor = 0;
    for (std::size_t i = 0; i < chain.procs.size(); ++i) {
        chain.starts[i] = cursor;
        cursor += alignedSize(program, chain.procs[i], line_bytes);
    }
    chain.length = cursor;
}

} // namespace

Layout
PettisHansen::place(const PlacementContext &ctx) const
{
    ctx.requireBasics("PettisHansen");
    require(ctx.wcg != nullptr, "PettisHansen: context has no WCG");
    const Program &program = *ctx.program;
    const WeightedGraph &wcg = *ctx.wcg;
    require(wcg.nodeCount() == program.procCount(),
            "PettisHansen: WCG node count mismatch");
    PhaseTimer timer("placement.ph");
    const std::uint32_t line_bytes = ctx.cache.line_bytes;

    // One chain per procedure to start; chain_of maps procedures to
    // their current chain (chains are merged in place, losers emptied).
    std::vector<Chain> chains(program.procCount());
    std::vector<std::uint32_t> chain_of(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        chains[i].procs = {static_cast<ProcId>(i)};
        reindex(chains[i], program, line_bytes);
        chain_of[i] = static_cast<std::uint32_t>(i);
    }

    MergeGraph working(wcg);
    if (has_tie_seed_)
        working.setTieBreaker(tie_seed_);
    MetricsRegistry &metrics = MetricsRegistry::current();
    const bool log_passes = logEnabled(LogLevel::kDebug);
    std::uint64_t merge_steps = 0;
    std::uint64_t edges_scanned = 0;
    while (!working.done()) {
        const MergeGraph::Edge heaviest = working.maxEdge();
        require(heaviest.valid, "PettisHansen: inconsistent working graph");
        const std::uint32_t ca = chain_of[heaviest.u];
        const std::uint32_t cb = chain_of[heaviest.v];
        require(ca != cb, "PettisHansen: edge inside one chain");
        Chain &a = chains[ca];
        Chain &b = chains[cb];

        // Find the strongest original-graph edge crossing the chains
        // (Section 2: "queries the original graph").
        ProcId best_p = kInvalidProc, best_q = kInvalidProc;
        double best_w = -1.0;
        const Chain &smaller = a.procs.size() <= b.procs.size() ? a : b;
        const std::uint32_t other = (&smaller == &a) ? cb : ca;
        for (ProcId p : smaller.procs) {
            // Iteration order is immaterial to the argmax below — it
            // carries an explicit (w, p, q) tie-break — and the CSR
            // rows are id-sorted anyway (DESIGN.md §9).
            for (const auto &[q, w] : wcg.neighbors(p)) {
                ++edges_scanned;
                if (chain_of[q] != other)
                    continue;
                if (w > best_w || (w == best_w && (p < best_p ||
                                                   (p == best_p &&
                                                    q < best_q)))) {
                    best_w = w;
                    best_p = p;
                    best_q = q;
                }
            }
        }
        require(best_p != kInvalidProc,
                "PettisHansen: no original edge between merged chains");
        // Normalise so best_p lives in chain a and best_q in chain b.
        if (chain_of[best_p] != ca)
            std::swap(best_p, best_q);

        // Evaluate the four concatenations AB, AB', A'B, A'B' by the
        // byte distance between best_p and best_q.
        const std::size_t ip = static_cast<std::size_t>(
            std::find(a.procs.begin(), a.procs.end(), best_p) -
            a.procs.begin());
        const std::size_t iq = static_cast<std::size_t>(
            std::find(b.procs.begin(), b.procs.end(), best_q) -
            b.procs.begin());
        const std::uint64_t size_p = alignedSize(program, best_p,
                                                 line_bytes);
        const std::uint64_t size_q = alignedSize(program, best_q,
                                                 line_bytes);
        // Position of p in A and in reversed A (A'), likewise for q.
        const std::uint64_t p_fwd = a.starts[ip];
        const std::uint64_t p_rev = a.length - a.starts[ip] - size_p;
        const std::uint64_t q_fwd = b.starts[iq];
        const std::uint64_t q_rev = b.length - b.starts[iq] - size_q;

        auto distance = [&](std::uint64_t p_pos, std::uint64_t q_pos) {
            // q is in the second chain, shifted by the length of the
            // first; measure the gap between the two procedures.
            const std::uint64_t q_abs = a.length + q_pos;
            return q_abs > p_pos + size_p ? q_abs - (p_pos + size_p)
                                          : 0;
        };
        struct Option
        {
            bool rev_a;
            bool rev_b;
            std::uint64_t dist;
        };
        const Option options[4] = {
            {false, false, distance(p_fwd, q_fwd)}, // AB
            {false, true, distance(p_fwd, q_rev)},  // AB'
            {true, false, distance(p_rev, q_fwd)},  // A'B
            {true, true, distance(p_rev, q_rev)},   // A'B'
        };
        const Option *best_opt = &options[0];
        for (const Option &opt : options) {
            if (opt.dist < best_opt->dist)
                best_opt = &opt;
        }
        if (ctx.decisions) {
            std::vector<double> dists(4);
            for (int i = 0; i < 4; ++i)
                dists[i] = static_cast<double>(options[i].dist);
            ctx.decisions->recordChoice(
                DecisionKind::kMerge, "ph.merge", best_p, best_q,
                heaviest.weight,
                static_cast<std::uint64_t>(best_opt - options), dists,
                "lowest-distance-first-option");
        }

        // Build the merged chain in place (into chain a).
        std::vector<ProcId> merged;
        merged.reserve(a.procs.size() + b.procs.size());
        if (best_opt->rev_a)
            merged.assign(a.procs.rbegin(), a.procs.rend());
        else
            merged.assign(a.procs.begin(), a.procs.end());
        if (best_opt->rev_b)
            merged.insert(merged.end(), b.procs.rbegin(), b.procs.rend());
        else
            merged.insert(merged.end(), b.procs.begin(), b.procs.end());
        a.procs = std::move(merged);
        reindex(a, program, line_bytes);
        for (ProcId moved : b.procs)
            chain_of[moved] = ca;
        b.procs.clear();
        b.starts.clear();
        b.length = 0;

        working.mergeInto(heaviest.u, heaviest.v);
        chain_of[heaviest.v] = ca; // representative bookkeeping
        ++merge_steps;
        if (log_passes) {
            logDebug("ph", "merge pass",
                     {{"step", merge_steps},
                      {"u", heaviest.u},
                      {"v", heaviest.v},
                      {"weight", heaviest.weight},
                      {"chain_procs", a.procs.size()},
                      {"reversed_a", best_opt->rev_a},
                      {"reversed_b", best_opt->rev_b}});
        }
    }
    metrics.counter("ph.merge_steps").add(merge_steps);
    metrics.counter("ph.edges_scanned").add(edges_scanned);

    // Emit: chains ordered by their hottest member, then singleton
    // procedures that never took part in a call edge.
    std::vector<std::uint32_t> chain_ids;
    for (std::uint32_t c = 0; c < chains.size(); ++c) {
        if (!chains[c].procs.empty())
            chain_ids.push_back(c);
    }
    auto chain_heat = [&](std::uint32_t c) {
        double h = 0.0;
        for (ProcId p : chains[c].procs)
            h = std::max(h, ctx.heatOf(p));
        return h;
    };
    std::stable_sort(chain_ids.begin(), chain_ids.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                         const double hx = chain_heat(x);
                         const double hy = chain_heat(y);
                         if (hx != hy)
                             return hx > hy;
                         return x < y;
                     });
    std::vector<ProcId> order;
    order.reserve(program.procCount());
    for (std::uint32_t c : chain_ids) {
        for (ProcId p : chains[c].procs)
            order.push_back(p);
    }
    Layout layout = Layout::fromOrder(program, order, line_bytes);
    if (ctx.decisions) {
        for (ProcId p : order)
            ctx.decisions->recordPlace("ph.emit", p, layout.address(p),
                                       ctx.heatOf(p),
                                       "hottest-chain,lower-chain-id");
    }
    timer.stop();
    if (log_passes) {
        logDebug("ph", "placement done",
                 {{"merge_steps", merge_steps},
                  {"edges_scanned", edges_scanned},
                  {"chains", chain_ids.size()},
                  {"ms", timer.elapsedMs()}});
    }
    return layout;
}

} // namespace topo
