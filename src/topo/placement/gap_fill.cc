#include "topo/placement/gap_fill.hh"

#include "topo/util/error.hh"

namespace topo
{

GapFiller::GapFiller(const Program &program, const std::vector<ProcId> &pool,
                     std::uint32_t line_bytes)
    : program_(program), line_bytes_(line_bytes)
{
    require(line_bytes > 0, "GapFiller: zero line size");
    for (ProcId id : pool) {
        const std::uint64_t lines =
            program.sizeInLines(id, line_bytes);
        by_lines_.emplace(lines, id);
    }
}

std::vector<std::pair<ProcId, std::uint64_t>>
GapFiller::fill(std::uint64_t gap_lines)
{
    std::vector<std::pair<ProcId, std::uint64_t>> placed;
    std::uint64_t cursor = 0;
    while (gap_lines > 0 && !by_lines_.empty()) {
        // Largest candidate with size <= gap_lines.
        auto it = by_lines_.upper_bound(gap_lines);
        if (it == by_lines_.begin())
            break; // nothing fits
        --it;
        const std::uint64_t lines = it->first;
        const ProcId id = it->second;
        by_lines_.erase(it);
        placed.emplace_back(id, cursor);
        cursor += lines;
        gap_lines -= lines;
    }
    return placed;
}

std::vector<ProcId>
GapFiller::remaining() const
{
    std::vector<ProcId> out;
    out.reserve(by_lines_.size());
    for (auto it = by_lines_.rbegin(); it != by_lines_.rend(); ++it)
        out.push_back(it->second);
    return out;
}

} // namespace topo
