#include "topo/placement/merge_graph.hh"

#include <algorithm>

#include "topo/util/error.hh"

namespace topo
{

MergeGraph::MergeGraph(const WeightedGraph &base,
                       const std::vector<bool> *mask)
    : adjacency_(base.nodeCount()), alive_(base.nodeCount(), true)
{
    if (mask) {
        require(mask->size() == base.nodeCount(),
                "MergeGraph: mask size mismatch");
    }
    for (const WeightedGraph::Edge &e : base.edges()) {
        if (mask && (!(*mask)[e.u] || !(*mask)[e.v]))
            continue;
        adjacency_[e.u][e.v] = e.weight;
        adjacency_[e.v][e.u] = e.weight;
        ++edge_count_;
    }
    if (mask) {
        for (std::size_t i = 0; i < alive_.size(); ++i)
            alive_[i] = (*mask)[i];
    }
}

MergeGraph::Edge
MergeGraph::maxEdge() const
{
    Edge best;
    // Reservoir count for uniform random tie breaking when enabled.
    std::uint64_t ties = 0;
    for (std::size_t u = 0; u < adjacency_.size(); ++u) {
        if (!alive_[u])
            continue;
        for (const auto &[v, w] : adjacency_[u]) {
            if (static_cast<BlockId>(u) > v)
                continue; // consider each edge once
            const BlockId a = static_cast<BlockId>(u);
            bool take = false;
            if (!best.valid || w > best.weight) {
                take = true;
                ties = 1;
            } else if (w == best.weight) {
                if (tie_rng_) {
                    // Reservoir sampling over equal-weight edges. Note
                    // the candidate order is hash-map order, but the
                    // selection is uniform over the tie set regardless.
                    ++ties;
                    take = tie_rng_->nextBelow(ties) == 0;
                } else {
                    take = a < best.u || (a == best.u && v < best.v);
                }
            }
            if (take) {
                best.u = a;
                best.v = v;
                best.weight = w;
                best.valid = true;
            }
        }
    }
    return best;
}

void
MergeGraph::setTieBreaker(std::uint64_t seed)
{
    tie_rng_ = std::make_unique<Rng>(seed);
}

void
MergeGraph::mergeInto(BlockId u, BlockId v)
{
    require(u < adjacency_.size() && v < adjacency_.size(),
            "MergeGraph::mergeInto: node out of range");
    require(u != v, "MergeGraph::mergeInto: cannot merge a node into "
                    "itself");
    require(alive_[u] && alive_[v], "MergeGraph::mergeInto: dead node");

    // Remove the direct edge if present.
    auto direct = adjacency_[u].find(v);
    if (direct != adjacency_[u].end()) {
        adjacency_[u].erase(direct);
        adjacency_[v].erase(u);
        --edge_count_;
    }
    // Fold v's remaining edges into u.
    for (const auto &[r, w] : adjacency_[v]) {
        auto [it, inserted] = adjacency_[u].try_emplace(r, 0.0);
        it->second += w;
        adjacency_[r].erase(v);
        adjacency_[r][u] = it->second;
        if (!inserted)
            --edge_count_; // parallel edge folded
    }
    adjacency_[v].clear();
    alive_[v] = false;
}

double
MergeGraph::weightBetween(BlockId u, BlockId v) const
{
    require(u < adjacency_.size() && v < adjacency_.size(),
            "MergeGraph::weightBetween: node out of range");
    auto it = adjacency_[u].find(v);
    return it == adjacency_[u].end() ? 0.0 : it->second;
}

} // namespace topo
