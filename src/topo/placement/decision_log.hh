/**
 * @file
 * Decision provenance for placement algorithms.
 *
 * A DecisionLog is a bounded sink that placement algorithms feed while
 * they run: one record per merge, alignment choice, final placement,
 * split classification, or rejection. Each record names the procedures
 * involved, the edge/TRG weight that drove the decision, the winning
 * choice with its cost, the top-k alternatives that were considered,
 * and the (static) tie-break rule that resolved equal costs.
 *
 * Recording follows the AttributionSink/TaxonomySink philosophy: the
 * sink is optional (a null `PlacementContext::decisions` pointer), so
 * the disabled path in every algorithm is a single pointer test and
 * the placement result is bit-identical with or without a log. The log
 * itself is allocation-aware: it reserves its record capacity up front
 * and drops (but counts) records past the bound instead of growing.
 */

#ifndef TOPO_PLACEMENT_DECISION_LOG_HH
#define TOPO_PLACEMENT_DECISION_LOG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/obs/json.hh"
#include "topo/program/program.hh"

namespace topo
{

/** What kind of choice a decision record captures. */
enum class DecisionKind : std::uint8_t
{
    /** Two chains/units/nodes were merged. */
    kMerge,
    /** A procedure received its final address. */
    kPlace,
    /** A cache-relative offset/color was chosen for a merge. */
    kColor,
    /** A procedure was split into hot and cold parts. */
    kSplit,
    /** A candidate edge/merge was considered and rejected. */
    kReject,
};

/** Stable lowercase name of a DecisionKind ("merge", "place", ...). */
const char *decisionKindName(DecisionKind kind);

/** Parse a kind name; throws TopoError(kCorrupt) on unknown names. */
DecisionKind decisionKindFromName(const std::string &name);

/**
 * One placement decision. `stage` and `tie_break` are static strings
 * supplied by the recording algorithm (e.g. "gbsc.align" /
 * "first-smallest-offset"); alternatives beyond the winner are the
 * next-best choices by cost, ascending.
 */
struct DecisionRecord
{
    /** A considered-but-not-chosen alternative. */
    struct Alternative
    {
        std::uint64_t choice = 0;
        double cost = 0.0;
    };

    /** Bound on stored alternatives per record. */
    static constexpr std::uint32_t kMaxAlternatives = 3;

    /** Monotone per-log sequence number (0-based). */
    std::uint64_t step = 0;
    DecisionKind kind = DecisionKind::kMerge;
    /** Static stage name, e.g. "ph.merge". Never null. */
    const char *stage = "";
    /** Primary procedure. */
    ProcId a = kInvalidProc;
    /** Secondary procedure (kInvalidProc for unary decisions). */
    ProcId b = kInvalidProc;
    /** Edge / TRG weight that drove the decision. */
    double weight = 0.0;
    /** Winning choice (offset, gap, option index, address...). */
    std::uint64_t chosen = 0;
    /** Cost of the winning choice. */
    double chosen_cost = 0.0;
    /** Static tie-break rule name. Never null. */
    const char *tie_break = "";
    /** Number of valid entries in `alternatives`. */
    std::uint32_t alternative_count = 0;
    std::array<Alternative, kMaxAlternatives> alternatives{};
};

/** Bounded sink of DecisionRecords. */
class DecisionLog
{
  public:
    struct Options
    {
        /** Records kept before the log starts dropping. */
        std::size_t max_records = 65536;
        /** Alternatives stored per record (<= kMaxAlternatives). */
        std::uint32_t top_k = DecisionRecord::kMaxAlternatives;
    };

    /** Default-bounded log (Options{}). */
    DecisionLog();

    explicit DecisionLog(Options options);

    /**
     * Append a record. The log assigns `step`; past the bound the
     * record is dropped and counted instead. Returns a scratch record
     * reference only while kept (callers must not hold it).
     */
    void record(DecisionRecord rec);

    /**
     * Record a choice made by scanning a dense cost array: `chosen`
     * must index into @p cost_by_choice. Fills chosen_cost and the
     * top-k runner-up alternatives (ascending cost; ties by smaller
     * choice, matching every algorithm's first-wins scan order).
     */
    void recordChoice(DecisionKind kind,
                      const char *stage,
                      ProcId a,
                      ProcId b,
                      double weight,
                      std::uint64_t chosen,
                      const std::vector<double> &cost_by_choice,
                      const char *tie_break);

    /** Convenience: record a final kPlace for one procedure. */
    void recordPlace(const char *stage,
                     ProcId proc,
                     std::uint64_t address,
                     double heat,
                     const char *tie_break);

    const std::vector<DecisionRecord> &records() const
    {
        return records_;
    }

    /** Records kept (== records().size()). */
    std::uint64_t kept() const { return records_.size(); }

    /** Records dropped because the bound was hit. */
    std::uint64_t dropped() const { return dropped_; }

    /** Name of the algorithm that fed the log (set by callers). */
    void setAlgorithm(std::string name) { algorithm_ = std::move(name); }
    const std::string &algorithm() const { return algorithm_; }

    /** Cache geometry the decisions were made against. */
    void setCache(const CacheConfig &cache) { cache_ = cache; }
    const CacheConfig &cache() const { return cache_; }

    /** Reset to empty, keeping options/algorithm/cache. */
    void clear();

    /**
     * True when every assigned procedure of @p layout_procs appears in
     * at least one kept record (any role). Fraction of covered
     * procedures returned through @p coverage when non-null.
     */
    double coverage(const Program &program) const;

    /**
     * Serialize as a "topo_decisions" JSON artifact. Procedures are
     * emitted by name so the file is self-describing and layout diffs
     * can cross-reference it against either side.
     */
    JsonValue toJson(const Program &program) const;

    /** Bump explain.* counters/gauges in the current registry. */
    void publishMetrics(const Program &program) const;

  private:
    Options options_;
    std::vector<DecisionRecord> records_;
    std::uint64_t dropped_ = 0;
    std::string algorithm_;
    CacheConfig cache_;
};

/**
 * A decisions file parsed back for cross-referencing: the subset of
 * record fields a layout diff needs, keyed by procedure name.
 */
struct LoadedDecisions
{
    struct Row
    {
        std::uint64_t step = 0;
        std::string kind;
        std::string stage;
        std::string proc_a;
        std::string proc_b;
        double weight = 0.0;
        std::uint64_t chosen = 0;
        std::string tie_break;
    };

    std::string algorithm;
    std::uint64_t kept = 0;
    std::uint64_t dropped = 0;
    std::vector<Row> rows;

    /** Indices into rows mentioning @p proc_name, in step order. */
    std::vector<std::size_t> rowsFor(const std::string &proc_name) const;
};

/**
 * Read and validate a decisions JSON file written by DecisionLog.
 * Throws TopoError(kCorrupt) on malformed input.
 */
LoadedDecisions readDecisionFile(const std::string &path);

/**
 * Snapshot a live log into the name-keyed LoadedDecisions form that
 * crossReferenceDecisions consumes — the same result as a round-trip
 * through toJson/readDecisionFile, without touching a file.
 */
LoadedDecisions snapshotDecisions(const DecisionLog &log,
                                  const Program &program);

} // namespace topo

#endif // TOPO_PLACEMENT_DECISION_LOG_HH
