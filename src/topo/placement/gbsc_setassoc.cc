#include "topo/placement/gbsc_setassoc.hh"

#include <algorithm>
#include <map>

#include "topo/placement/decision_log.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Sorted unique set indices covered by a placed procedure. */
std::vector<std::uint32_t>
setsCovered(const PlacementContext &ctx, ProcId proc, std::uint32_t offset)
{
    const std::uint32_t sets = ctx.cache.setCount();
    const std::uint32_t len =
        ctx.program->sizeInLines(proc, ctx.cache.line_bytes);
    std::vector<std::uint32_t> covered;
    if (len >= sets) {
        covered.resize(sets);
        for (std::uint32_t s = 0; s < sets; ++s)
            covered[s] = s;
        return covered;
    }
    covered.reserve(len);
    for (std::uint32_t line = 0; line < len; ++line)
        covered.push_back((offset + line) % sets);
    std::sort(covered.begin(), covered.end());
    covered.erase(std::unique(covered.begin(), covered.end()),
                  covered.end());
    return covered;
}

/**
 * Ordered map per the determinism audit (DESIGN.md §9): only keyed
 * lookups touch it today, but every container feeding placement
 * decisions stays ordered so no future loop can inherit hash order.
 */
using SetMap = std::map<ProcId, std::vector<std::uint32_t>>;

SetMap
nodeSets(const PlacementContext &ctx, const GbscNode &node)
{
    SetMap map;
    for (const auto &[proc, offset] : node.procs)
        map.emplace(proc, setsCovered(ctx, proc, offset));
    return map;
}

/** Sorted-vector intersection. */
std::vector<std::uint32_t>
intersect(const std::vector<std::uint32_t> &a,
          const std::vector<std::uint32_t> &b)
{
    std::vector<std::uint32_t> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

/** Per-set line-occupancy histogram of a node. */
std::vector<std::uint64_t>
setOccupancy(const PlacementContext &ctx, const GbscNode &node)
{
    const std::uint32_t sets = ctx.cache.setCount();
    std::vector<std::uint64_t> occ(sets, 0);
    for (const auto &[proc, offset] : node.procs) {
        const std::uint32_t len =
            ctx.program->sizeInLines(proc, ctx.cache.line_bytes);
        for (std::uint32_t line = 0; line < len; ++line)
            ++occ[(offset + line) % sets];
    }
    return occ;
}

} // namespace

void
GbscSetAssoc::validateInputs(const PlacementContext &ctx) const
{
    require(ctx.pairs != nullptr,
            "GbscSetAssoc: context has no pair database");
    require(ctx.cache.associativity >= 2,
            "GbscSetAssoc: cache must be set-associative");
    require(ctx.chunks != nullptr && ctx.trg_place != nullptr,
            "GbscSetAssoc: context needs chunks and TRG_place for the "
            "inherited machinery");
}

GbscNode
GbscSetAssoc::doMerge(const PlacementContext &ctx, const GbscNode &n1,
                      const GbscNode &n2) const
{
    const std::uint32_t sets = ctx.cache.setCount();
    const std::uint32_t cache_lines = ctx.cache.lineCount();

    const SetMap sets1 = nodeSets(ctx, n1);
    const SetMap sets2 = nodeSets(ctx, n2);

    // D(p,{r,s}) is charged at every alignment mapping the victim p and
    // both displacing blocks r, s to one set. Constant terms (all three
    // blocks in the same node) cannot influence the choice and are
    // skipped; every mixed membership is charged:
    //   one block moving with n2  -> the two fixed blocks must already
    //   share a set c; alignment i = c - set(moving block);
    //   two blocks moving with n2 -> they must share a set c2 in n2's
    //   frame; alignment i = set(fixed block) - c2.
    std::vector<double> cost(sets, 0.0);
    for (const PairDatabase::Entry &e : ctx.pairs->entries()) {
        const std::vector<std::uint32_t> *in1[3] = {nullptr, nullptr,
                                                    nullptr};
        const std::vector<std::uint32_t> *in2[3] = {nullptr, nullptr,
                                                    nullptr};
        const BlockId ids[3] = {e.p, e.r, e.s};
        bool involved = true;
        int moving = 0;
        for (int k = 0; k < 3; ++k) {
            auto it1 = sets1.find(ids[k]);
            auto it2 = sets2.find(ids[k]);
            if (it1 != sets1.end()) {
                in1[k] = &it1->second;
            } else if (it2 != sets2.end()) {
                in2[k] = &it2->second;
                ++moving;
            } else {
                involved = false;
                break;
            }
        }
        if (!involved || moving == 0 || moving == 3)
            continue;
        if (moving == 1) {
            // Two fixed blocks, one moving.
            int m = 0;
            while (in2[m] == nullptr)
                ++m;
            const int f1 = (m + 1) % 3, f2 = (m + 2) % 3;
            for (std::uint32_t c : intersect(*in1[f1], *in1[f2])) {
                for (std::uint32_t x : *in2[m])
                    cost[(c + sets - x) % sets] += e.weight;
            }
        } else {
            // Two moving blocks, one fixed.
            int f = 0;
            while (in1[f] == nullptr)
                ++f;
            const int m1 = (f + 1) % 3, m2 = (f + 2) % 3;
            for (std::uint32_t c2 : intersect(*in2[m1], *in2[m2])) {
                for (std::uint32_t y : *in1[f])
                    cost[(y + sets - c2) % sets] += e.weight;
            }
        }
    }

    // The pair database is sparse (window cap, pruning), so many
    // alignments tie at the same D cost. Secondary criterion: the
    // chunk-granularity TRG_place cost evaluated at set granularity —
    // a single-interleaver collision cannot evict in a 2-way set, but
    // among equal-D alignments avoiding hot co-residency is strictly
    // safer. Tertiary: raw line overlap (occupancy spreading).
    const std::vector<double> chunk_cost =
        Gbsc::alignmentCost(ctx, n1, n2, sets);
    const std::vector<std::uint64_t> occ1 = setOccupancy(ctx, n1);
    const std::vector<std::uint64_t> occ2 = setOccupancy(ctx, n2);
    std::vector<std::uint64_t> overlap(sets, 0);
    for (std::uint32_t s1 = 0; s1 < sets; ++s1) {
        if (occ1[s1] == 0)
            continue;
        for (std::uint32_t s2 = 0; s2 < sets; ++s2) {
            if (occ2[s2] == 0)
                continue;
            overlap[(s1 + sets - s2) % sets] += occ1[s1] * occ2[s2];
        }
    }

    std::uint32_t best_offset = 0;
    auto better = [&](std::uint32_t a, std::uint32_t b) {
        if (cost[a] != cost[b])
            return cost[a] < cost[b];
        if (chunk_cost[a] != chunk_cost[b])
            return chunk_cost[a] < chunk_cost[b];
        return overlap[a] < overlap[b];
    };
    for (std::uint32_t i = 1; i < sets; ++i) {
        if (better(i, best_offset))
            best_offset = i;
    }
    if (ctx.decisions) {
        const ProcId rep1 =
            n1.procs.empty() ? kInvalidProc : n1.procs.front().first;
        const ProcId rep2 =
            n2.procs.empty() ? kInvalidProc : n2.procs.front().first;
        ctx.decisions->recordChoice(DecisionKind::kColor, "gbsc_sa.align",
                                    rep1, rep2, 0.0, best_offset, cost,
                                    "pair-D,chunk-cost,overlap");
    }

    GbscNode merged;
    merged.procs = n1.procs;
    merged.procs.reserve(n1.procs.size() + n2.procs.size());
    for (const auto &[proc, offset] : n2.procs) {
        merged.procs.emplace_back(proc,
                                  (offset + best_offset) % cache_lines);
    }
    return merged;
}

} // namespace topo
