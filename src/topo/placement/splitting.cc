#include "topo/placement/splitting.hh"

#include <algorithm>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/placement/decision_log.hh"
#include "topo/util/error.hh"

namespace topo
{

std::vector<std::uint64_t>
chunkHeat(const Program &program, const ChunkMap &chunks,
          const Trace &trace)
{
    require(trace.procCount() == program.procCount(),
            "chunkHeat: program/trace mismatch");
    std::vector<std::uint64_t> heat(chunks.chunkCount(), 0);
    const std::uint32_t chunk_bytes = chunks.chunkBytes();
    for (const TraceEvent &ev : trace.events()) {
        const std::uint32_t end = ev.offset + ev.length;
        std::uint32_t pos = ev.offset;
        while (pos < end) {
            const std::uint32_t idx = pos / chunk_bytes;
            const std::uint32_t chunk_end =
                std::min(end, (idx + 1) * chunk_bytes);
            heat[chunks.chunkId(ev.proc, idx)] += chunk_end - pos;
            pos = chunk_end;
        }
    }
    return heat;
}

const SplitProgram::ProcSplit &
SplitProgram::splitOf(ProcId original) const
{
    require(original < splits_.size(), "SplitProgram: invalid original "
                                       "procedure id");
    return splits_[original];
}

Trace
SplitProgram::transform(const Trace &original) const
{
    require(original.procCount() == original_proc_count_,
            "SplitProgram::transform: trace was recorded against a "
            "different program");
    Trace out(program_.procCount());
    out.reserve(original.size());

    // Pending run being coalesced.
    ProcId cur_proc = kInvalidProc;
    std::uint32_t cur_begin = 0;
    std::uint32_t cur_end = 0;
    auto flush = [&]() {
        if (cur_proc != kInvalidProc && cur_end > cur_begin)
            out.append(cur_proc, cur_begin, cur_end - cur_begin);
        cur_proc = kInvalidProc;
    };

    for (const TraceEvent &ev : original.events()) {
        const std::uint32_t end = ev.offset + ev.length;
        std::uint32_t pos = ev.offset;
        while (pos < end) {
            const std::uint32_t idx = pos / chunk_bytes_;
            const std::uint32_t chunk_begin = idx * chunk_bytes_;
            const std::uint32_t piece_end =
                std::min(end, chunk_begin + chunk_bytes_);
            const ChunkId chunk = first_chunk_[ev.proc] + idx;
            const ProcId dst = chunk_proc_[chunk];
            const std::uint32_t dst_off =
                chunk_offset_[chunk] + (pos - chunk_begin);
            const std::uint32_t dst_end = dst_off + (piece_end - pos);
            if (dst == cur_proc && dst_off == cur_end) {
                cur_end = dst_end; // contiguous: coalesce
            } else {
                flush();
                cur_proc = dst;
                cur_begin = dst_off;
                cur_end = dst_end;
            }
            pos = piece_end;
        }
    }
    flush();
    return out;
}

SplitProgram
splitProcedures(const Program &program, const Trace &training,
                const SplitOptions &options)
{
    require(options.chunk_bytes > 0, "splitProcedures: zero chunk size");
    require(options.min_fetched_bytes > 0,
            "splitProcedures: zero hot threshold");
    PhaseTimer timer("splitting");
    const ChunkMap chunks(program, options.chunk_bytes);
    const std::vector<std::uint64_t> heat =
        chunkHeat(program, chunks, training);

    SplitProgram split;
    split.program_ = Program(program.name() + ".split");
    split.splits_.resize(program.procCount());
    split.chunk_proc_.assign(chunks.chunkCount(), kInvalidProc);
    split.chunk_offset_.assign(chunks.chunkCount(), 0);
    split.chunk_bytes_ = options.chunk_bytes;
    split.original_proc_count_ = program.procCount();
    split.first_chunk_.resize(program.procCount());
    for (std::size_t p = 0; p < program.procCount(); ++p) {
        split.first_chunk_[p] =
            chunks.chunkId(static_cast<ProcId>(p), 0);
    }

    // Cold parts are appended after all hot parts so the derived
    // "source order" keeps hot code together even before placement.
    struct PendingCold
    {
        ProcId original;
        std::vector<ChunkId> chunks;
        std::uint32_t bytes;
    };
    std::vector<PendingCold> pending_cold;

    for (std::size_t p = 0; p < program.procCount(); ++p) {
        const auto original = static_cast<ProcId>(p);
        const std::uint32_t count = chunks.chunksOf(original);
        std::vector<ChunkId> hot_chunks, cold_chunks;
        std::uint32_t hot_bytes = 0, cold_bytes = 0;
        for (std::uint32_t c = 0; c < count; ++c) {
            const ChunkId chunk = chunks.chunkId(original, c);
            if (heat[chunk] >= options.min_fetched_bytes) {
                hot_chunks.push_back(chunk);
                hot_bytes += chunks.chunkSizeBytes(chunk);
            } else {
                cold_chunks.push_back(chunk);
                cold_bytes += chunks.chunkSizeBytes(chunk);
            }
        }
        SplitProgram::ProcSplit &entry = split.splits_[original];
        const std::string &name = program.proc(original).name;
        if (!hot_chunks.empty()) {
            const bool whole = cold_chunks.empty();
            entry.hot = split.program_.addProcedure(
                whole ? name : name + ".hot", hot_bytes);
            std::uint32_t offset = 0;
            for (ChunkId chunk : hot_chunks) {
                split.chunk_proc_[chunk] = entry.hot;
                split.chunk_offset_[chunk] = offset;
                offset += chunks.chunkSizeBytes(chunk);
            }
        }
        if (!cold_chunks.empty()) {
            pending_cold.push_back(
                PendingCold{original, std::move(cold_chunks),
                            cold_bytes});
        }
        if (!hot_chunks.empty() && !pending_cold.empty() &&
            pending_cold.back().original == original) {
            ++split.split_count_;
            if (options.decisions) {
                DecisionRecord rec;
                rec.kind = DecisionKind::kSplit;
                rec.stage = "split.classify";
                rec.a = original;
                rec.weight = static_cast<double>(hot_bytes);
                rec.chosen = cold_bytes;
                rec.chosen_cost =
                    static_cast<double>(options.min_fetched_bytes);
                rec.tie_break = "chunk-heat-threshold";
                options.decisions->record(rec);
            }
        }
    }
    for (const PendingCold &cold : pending_cold) {
        SplitProgram::ProcSplit &entry = split.splits_[cold.original];
        const std::string &name = program.proc(cold.original).name;
        const bool whole = entry.hot == kInvalidProc;
        entry.cold = split.program_.addProcedure(
            whole ? name : name + ".cold", cold.bytes);
        std::uint32_t offset = 0;
        for (ChunkId chunk : cold.chunks) {
            split.chunk_proc_[chunk] = entry.cold;
            split.chunk_offset_[chunk] = offset;
            offset += chunks.chunkSizeBytes(chunk);
        }
        split.cold_bytes_ += cold.bytes;
    }
    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("split.runs").add();
    metrics.counter("split.procs_split").add(split.split_count_);
    metrics.counter("split.cold_bytes").add(split.cold_bytes_);
    timer.stop();
    if (logEnabled(LogLevel::kDebug)) {
        logDebug("split", "splitting done",
                 {{"procs", program.procCount()},
                  {"procs_split", split.split_count_},
                  {"cold_bytes", split.cold_bytes_},
                  {"derived_procs", split.program_.procCount()},
                  {"ms", timer.elapsedMs()}});
    }
    return split;
}

SplitProgram
explodeProcedures(const Program &program, std::uint32_t chunk_bytes)
{
    require(chunk_bytes > 0, "explodeProcedures: zero chunk size");
    const ChunkMap chunks(program, chunk_bytes);

    SplitProgram split;
    split.program_ = Program(program.name() + ".exploded");
    split.splits_.resize(program.procCount());
    split.chunk_proc_.assign(chunks.chunkCount(), kInvalidProc);
    split.chunk_offset_.assign(chunks.chunkCount(), 0);
    split.chunk_bytes_ = chunk_bytes;
    split.original_proc_count_ = program.procCount();
    split.first_chunk_.resize(program.procCount());

    for (std::size_t p = 0; p < program.procCount(); ++p) {
        const auto original = static_cast<ProcId>(p);
        split.first_chunk_[p] = chunks.chunkId(original, 0);
        const std::uint32_t count = chunks.chunksOf(original);
        for (std::uint32_t c = 0; c < count; ++c) {
            const ChunkId chunk = chunks.chunkId(original, c);
            const ProcId derived = split.program_.addProcedure(
                program.proc(original).name + "." + std::to_string(c),
                chunks.chunkSizeBytes(chunk));
            split.chunk_proc_[chunk] = derived;
            split.chunk_offset_[chunk] = 0;
            if (c == 0)
                split.splits_[original].hot = derived;
        }
        if (count > 1)
            ++split.split_count_;
    }
    return split;
}

} // namespace topo
