/**
 * @file
 * Greedy best-fit filling of layout gaps with unpopular procedures
 * (Section 4.3: "we search the unpopular procedures for one or more
 * that fill the gap"). Shared by the GBSC and HKC emitters.
 */

#ifndef TOPO_PLACEMENT_GAP_FILL_HH
#define TOPO_PLACEMENT_GAP_FILL_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "topo/program/program.hh"

namespace topo
{

/**
 * Consumes a pool of filler procedures, handing out best-fit subsets
 * for successive gaps.
 */
class GapFiller
{
  public:
    /**
     * @param program    Procedure inventory.
     * @param pool       Candidate fillers (each consumed at most once).
     * @param line_bytes Cache line size for size rounding.
     */
    GapFiller(const Program &program, const std::vector<ProcId> &pool,
              std::uint32_t line_bytes);

    /**
     * Fill a gap of @p gap_lines cache lines: repeatedly take the
     * largest remaining candidate that still fits. Returns the chosen
     * procedures with their line offsets relative to the gap start.
     */
    std::vector<std::pair<ProcId, std::uint64_t>>
    fill(std::uint64_t gap_lines);

    /** Candidates not yet consumed, largest first. */
    std::vector<ProcId> remaining() const;

  private:
    const Program &program_;
    std::uint32_t line_bytes_;
    /** size-in-lines -> procedure ids of that size (FIFO per size). */
    std::multimap<std::uint64_t, ProcId> by_lines_;
};

} // namespace topo

#endif // TOPO_PLACEMENT_GAP_FILL_HH
