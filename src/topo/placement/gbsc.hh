/**
 * @file
 * GBSC: the paper's temporal-ordering procedure-placement algorithm
 * (Section 4).
 *
 * Selection: greedy heaviest-edge merging over TRG_select restricted
 * to popular procedures, exactly as PH processes its working graph.
 * Placement: instead of chains, a node is a set of (procedure,
 * cache-line offset) tuples; merge_nodes (Figure 4) scans all relative
 * cache alignments of the two nodes and keeps the one minimising the
 * TRG_place conflict metric between procedure chunks. The final linear
 * list (Section 4.3) orders procedures by the smallest-positive-gap
 * rule and fills gaps with unpopular procedures.
 *
 * Implementation note: merge_nodes accumulates the Figure 4 cost array
 * sparsely — iterating TRG_place edges that cross the two nodes and
 * crediting each edge to every relative offset at which the two chunks
 * would share a cache line — which is bit-identical to the quadratic
 * scan of the pseudo-code but far cheaper. Ties select the smallest
 * offset, preserving the paper's "first zero-cost line after p"
 * PH-equivalence in the small case.
 */

#ifndef TOPO_PLACEMENT_GBSC_HH
#define TOPO_PLACEMENT_GBSC_HH

#include "topo/placement/placement.hh"

namespace topo
{

/** A GBSC working node: procedures with cache-relative line offsets. */
struct GbscNode
{
    std::vector<std::pair<ProcId, std::uint32_t>> procs;
};

/** GBSC placement (direct-mapped caches). */
class Gbsc : public PlacementAlgorithm
{
  public:
    Gbsc() = default;

    /**
     * Construct with a random tie breaker for equal-weight working
     * edges (Section 5.1 sensitivity experiments). The default breaks
     * ties deterministically.
     */
    explicit Gbsc(std::uint64_t tie_seed)
        : tie_seed_(tie_seed), has_tie_seed_(true)
    {}

    std::string name() const override { return "GBSC"; }

    /**
     * Place using ctx.trg_select, ctx.trg_place, ctx.chunks, ctx.cache
     * and ctx.popular. All of those are required (popularity may be
     * empty, meaning every procedure is popular).
     */
    Layout place(const PlacementContext &ctx) const override;

    /**
     * The Figure 4 routine, exposed for tests and the set-associative
     * subclass: choose the best relative offset of @p n2 against
     * @p n1 under the TRG_place metric and return the merged node.
     *
     * @param ctx Context carrying cache geometry, chunks, trg_place.
     * @param n1  First node (layout fixed).
     * @param n2  Second node (offsets shifted by the chosen amount).
     * @param out_best_metric Optional: receives the winning cost.
     */
    static GbscNode mergeNodes(const PlacementContext &ctx,
                               const GbscNode &n1, const GbscNode &n2,
                               double *out_best_metric = nullptr);

    /**
     * The Figure 4 cost array, computed sparsely: entry i is the sum
     * of TRG_place weights over chunk pairs (one chunk per node) that
     * would share a cache frame when n2 is shifted by i lines, with
     * frame collisions evaluated modulo @p modulus. mergeNodes uses
     * modulus == lineCount(); the set-associative variant reuses the
     * same array at modulus == setCount().
     */
    static std::vector<double> alignmentCost(const PlacementContext &ctx,
                                             const GbscNode &n1,
                                             const GbscNode &n2,
                                             std::uint32_t modulus);

    /**
     * Whole placement conflict metric of a set of cache-relative
     * offsets: the sum, over every cache line, of TRG_place weights
     * between chunk pairs mapped to that line. This is the quantity
     * Figure 6 correlates against real miss counts.
     */
    static double conflictMetric(const PlacementContext &ctx,
                                 const std::vector<std::uint32_t> &offsets,
                                 const std::vector<bool> *include = nullptr);

  protected:
    /** Validate the inputs this variant needs (called by place()). */
    virtual void validateInputs(const PlacementContext &ctx) const;

    /** Merge hook; the set-associative variant overrides the cost. */
    virtual GbscNode doMerge(const PlacementContext &ctx,
                             const GbscNode &n1, const GbscNode &n2) const;

  private:
    std::uint64_t tie_seed_ = 0;
    bool has_tie_seed_ = false;
};

} // namespace topo

#endif // TOPO_PLACEMENT_GBSC_HH
