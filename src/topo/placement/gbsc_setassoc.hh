/**
 * @file
 * GBSC extension for set-associative caches (Section 6).
 *
 * In a 2-way LRU set one intervening block cannot evict p; two can.
 * The merge cost therefore consults the pair database D(p,{r,s}): an
 * alignment is charged D(p,{r,s}) whenever it maps p (in one node) and
 * both r and s (in the other node) to the same set. Selection and
 * final-list emission are inherited from Gbsc.
 *
 * Implementation notes (documented substitutions, see DESIGN.md):
 * the database is built at procedure granularity with a bounded pair
 * window, and mixed triples with r and s in different nodes are not
 * charged — matching the paper's "a code block in n1 against all
 * pairs of code blocks in n2 and vice-versa" description.
 */

#ifndef TOPO_PLACEMENT_GBSC_SETASSOC_HH
#define TOPO_PLACEMENT_GBSC_SETASSOC_HH

#include "topo/placement/gbsc.hh"

namespace topo
{

/** Set-associative GBSC (Section 6); requires ctx.pairs. */
class GbscSetAssoc : public Gbsc
{
  public:
    using Gbsc::Gbsc;

    std::string name() const override { return "GBSC-SA"; }

  protected:
    void validateInputs(const PlacementContext &ctx) const override;
    GbscNode doMerge(const PlacementContext &ctx, const GbscNode &n1,
                     const GbscNode &n2) const override;
};

} // namespace topo

#endif // TOPO_PLACEMENT_GBSC_SETASSOC_HH
