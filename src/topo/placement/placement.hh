/**
 * @file
 * The placement-algorithm interface and trivial baselines.
 *
 * A placement algorithm maps profile information to a Layout. All four
 * algorithms of the paper's evaluation (default order, PH, HKC, GBSC)
 * plus the Section 6 set-associative variant implement this interface;
 * the evaluation harness treats them uniformly.
 */

#ifndef TOPO_PLACEMENT_PLACEMENT_HH
#define TOPO_PLACEMENT_PLACEMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/profile/chunk_map.hh"
#include "topo/profile/pair_database.hh"
#include "topo/profile/weighted_graph.hh"
#include "topo/program/layout.hh"
#include "topo/program/program.hh"

namespace topo
{

class DecisionLog;

/**
 * Everything a placement algorithm may consume. Algorithms require()
 * the fields they need; unused fields may be left null.
 */
struct PlacementContext
{
    const Program *program = nullptr;
    CacheConfig cache;
    /** Chunking used by TRG_place (GBSC). */
    const ChunkMap *chunks = nullptr;
    /** Call/return transition graph (PH, HKC). */
    const WeightedGraph *wcg = nullptr;
    /** Procedure-granularity TRG (GBSC selection). */
    const WeightedGraph *trg_select = nullptr;
    /** Chunk-granularity TRG (GBSC alignment cost). */
    const WeightedGraph *trg_place = nullptr;
    /** Section 6 pair database (set-associative GBSC). */
    const PairDatabase *pairs = nullptr;
    /** Popularity mask; empty means every procedure is popular. */
    std::vector<bool> popular;
    /** Dynamic bytes fetched per procedure (ordering heuristic). */
    std::vector<double> heat;
    /** Optional decision-provenance sink; null disables recording. */
    DecisionLog *decisions = nullptr;

    /** True when @p proc is popular (or no mask was provided). */
    bool
    isPopular(ProcId proc) const
    {
        return popular.empty() || popular[proc];
    }

    /** Heat of a procedure; 0 when no heat vector was provided. */
    double
    heatOf(ProcId proc) const
    {
        return proc < heat.size() ? heat[proc] : 0.0;
    }

    /** Check the universally required fields. */
    void requireBasics(const std::string &who) const;
};

/** Abstract procedure-placement algorithm. */
class PlacementAlgorithm
{
  public:
    virtual ~PlacementAlgorithm() = default;

    /** Short display name ("PH", "HKC", "GBSC", ...). */
    virtual std::string name() const = 0;

    /** Produce a complete layout for the context's program. */
    virtual Layout place(const PlacementContext &ctx) const = 0;
};

/**
 * The compiler's default layout: source order, no gaps (Section 1).
 */
class DefaultPlacement : public PlacementAlgorithm
{
  public:
    std::string name() const override { return "default"; }
    Layout place(const PlacementContext &ctx) const override;
};

/**
 * Uniform-random procedure order; a control baseline for experiments
 * (not part of the paper's comparison, useful for sanity checks).
 */
class RandomPlacement : public PlacementAlgorithm
{
  public:
    explicit RandomPlacement(std::uint64_t seed) : seed_(seed) {}
    std::string name() const override { return "random"; }
    Layout place(const PlacementContext &ctx) const override;

  private:
    std::uint64_t seed_;
};

/**
 * Order procedure ids by descending heat (then ascending id). Shared
 * by several algorithms for placing leftover procedures.
 */
std::vector<ProcId> procsByHeat(const PlacementContext &ctx);

} // namespace topo

#endif // TOPO_PLACEMENT_PLACEMENT_HH
