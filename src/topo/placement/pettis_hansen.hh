/**
 * @file
 * The Pettis-Hansen procedure-placement algorithm (Section 2).
 *
 * PH greedily merges the two nodes joined by the heaviest edge of the
 * working graph. Node contents are kept as linear *chains*; when two
 * chains merge, the four concatenations AB, AB', A'B, A'B' are scored
 * by the byte distance between the endpoints of the strongest
 * original-graph edge crossing the chains, and the closest wins. The
 * final layout concatenates the surviving chains.
 */

#ifndef TOPO_PLACEMENT_PETTIS_HANSEN_HH
#define TOPO_PLACEMENT_PETTIS_HANSEN_HH

#include "topo/placement/placement.hh"

namespace topo
{

/** Pettis-Hansen placement driven by the context's WCG. */
class PettisHansen : public PlacementAlgorithm
{
  public:
    PettisHansen() = default;

    /**
     * Construct with a random tie breaker for equal-weight working
     * edges (Section 5.1 sensitivity experiments). The default breaks
     * ties deterministically.
     */
    explicit PettisHansen(std::uint64_t tie_seed)
        : tie_seed_(tie_seed), has_tie_seed_(true)
    {}

    std::string name() const override { return "PH"; }

    /**
     * Place using ctx.wcg. Requires program and wcg; popularity is not
     * used (PH operates on every procedure with call activity, as in
     * the original paper).
     */
    Layout place(const PlacementContext &ctx) const override;

  private:
    std::uint64_t tie_seed_ = 0;
    bool has_tie_seed_ = false;
};

} // namespace topo

#endif // TOPO_PLACEMENT_PETTIS_HANSEN_HH
