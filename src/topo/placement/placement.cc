#include "topo/placement/placement.hh"

#include <algorithm>
#include <numeric>

#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{

void
PlacementContext::requireBasics(const std::string &who) const
{
    require(program != nullptr, who + ": context has no program");
    cache.validate();
    if (!popular.empty()) {
        require(popular.size() == program->procCount(),
                who + ": popularity mask size mismatch");
    }
    if (!heat.empty()) {
        require(heat.size() == program->procCount(),
                who + ": heat vector size mismatch");
    }
}

Layout
DefaultPlacement::place(const PlacementContext &ctx) const
{
    ctx.requireBasics("DefaultPlacement");
    return Layout::defaultOrder(*ctx.program, ctx.cache.line_bytes);
}

Layout
RandomPlacement::place(const PlacementContext &ctx) const
{
    ctx.requireBasics("RandomPlacement");
    std::vector<ProcId> order(ctx.program->procCount());
    std::iota(order.begin(), order.end(), 0);
    Rng rng(seed_);
    rng.shuffle(order);
    return Layout::fromOrder(*ctx.program, order, ctx.cache.line_bytes);
}

std::vector<ProcId>
procsByHeat(const PlacementContext &ctx)
{
    std::vector<ProcId> order(ctx.program->procCount());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&ctx](ProcId a, ProcId b) {
                         const double ha = ctx.heatOf(a);
                         const double hb = ctx.heatOf(b);
                         if (ha != hb)
                             return ha > hb;
                         return a < b;
                     });
    return order;
}

} // namespace topo
