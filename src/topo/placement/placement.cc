#include "topo/placement/placement.hh"

#include <algorithm>
#include <numeric>

#include "topo/placement/decision_log.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{

namespace
{

/** Trivial per-procedure kPlace records for a finished layout. */
void
recordWholeLayout(const PlacementContext &ctx, const Layout &layout,
                  const char *stage, const char *tie_break)
{
    if (!ctx.decisions)
        return;
    for (ProcId p : layout.orderByAddress())
        ctx.decisions->recordPlace(stage, p, layout.address(p),
                                   ctx.heatOf(p), tie_break);
}

} // namespace

void
PlacementContext::requireBasics(const std::string &who) const
{
    require(program != nullptr, who + ": context has no program");
    cache.validate();
    if (!popular.empty()) {
        require(popular.size() == program->procCount(),
                who + ": popularity mask size mismatch");
    }
    if (!heat.empty()) {
        require(heat.size() == program->procCount(),
                who + ": heat vector size mismatch");
    }
}

Layout
DefaultPlacement::place(const PlacementContext &ctx) const
{
    ctx.requireBasics("DefaultPlacement");
    Layout layout = Layout::defaultOrder(*ctx.program,
                                         ctx.cache.line_bytes);
    recordWholeLayout(ctx, layout, "default.emit", "source-order");
    return layout;
}

Layout
RandomPlacement::place(const PlacementContext &ctx) const
{
    ctx.requireBasics("RandomPlacement");
    std::vector<ProcId> order(ctx.program->procCount());
    std::iota(order.begin(), order.end(), 0);
    Rng rng(seed_);
    rng.shuffle(order);
    Layout layout = Layout::fromOrder(*ctx.program, order,
                                      ctx.cache.line_bytes);
    recordWholeLayout(ctx, layout, "random.emit", "seeded-shuffle");
    return layout;
}

std::vector<ProcId>
procsByHeat(const PlacementContext &ctx)
{
    std::vector<ProcId> order(ctx.program->procCount());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&ctx](ProcId a, ProcId b) {
                         const double ha = ctx.heatOf(a);
                         const double hb = ctx.heatOf(b);
                         if (ha != hb)
                             return ha > hb;
                         return a < b;
                     });
    return order;
}

} // namespace topo
