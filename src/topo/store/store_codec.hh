/**
 * @file
 * Binary codec of the persistent profile store (DESIGN.md §12).
 *
 * Three on-disk artefacts share the little-endian, CRC-32-guarded
 * framing of the checkpoint format:
 *
 *   store.meta      "TOPM" u32 crc u64 size payload
 *                   payload: version, store_id, config (cache
 *                   geometry, chunk size, Q budget, pair/popularity
 *                   knobs, the embedded program inventory)
 *
 *   snapshot-<g%2>.tps
 *                   "TOPS" u32 crc u64 size payload
 *                   payload: version, store_id, generation,
 *                   applied_seq, serialized StoredProfile
 *
 *   journal.tpj     "TOPJ" u32 version u64 store_id, then records:
 *                   u32 payload_len, u32 crc32(payload), payload
 *                   payload: u64 seq, u8 kind, body
 *
 * Every weight is serialized as the raw IEEE-754 bit pattern, so a
 * round trip is bit-exact and "reopened store == in-memory fold of
 * the same shards" holds to the last ulp (the crash-matrix test's
 * invariant). serializeProfile() is the canonical form used both for
 * snapshots and for state comparison in tests.
 */

#ifndef TOPO_STORE_STORE_CODEC_HH
#define TOPO_STORE_STORE_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/profile/pair_database.hh"
#include "topo/profile/weighted_graph.hh"
#include "topo/program/program.hh"

namespace topo
{

/** Immutable store configuration, fixed at `topo_profile init`. */
struct StoreConfig
{
    /** Procedure inventory the profiles are built against. */
    Program program{"store"};
    /** Cache geometry placements target. */
    CacheConfig cache = CacheConfig::paperDefault();
    /** Chunk size of TRG_place. */
    std::uint32_t chunk_bytes = 256;
    /** Q byte budget of the TRG walks (q_factor x cache size). */
    std::uint64_t byte_budget = 2 * 8 * 1024;
    /** Accumulate the Section 6 pair database too. */
    bool build_pairs = false;
    /** Pair-window cap when build_pairs is set. */
    std::uint32_t pair_window = 16;
    /** Popularity coverage used at placement time. */
    double coverage = 0.999;
};

/** Provenance of one ingested shard. */
struct ShardInfo
{
    /** Display label (defaults to the trace path's basename). */
    std::string label;
    /** Number of trace runs the shard contributed. */
    std::uint64_t events = 0;
    /** Journal sequence number that ingested it. */
    std::uint64_t seq = 0;
};

/**
 * The store's logical state: the standing profile every ingest merges
 * into, plus the last accepted placement and its TRG baseline (the
 * drift reference).
 */
struct StoredProfile
{
    /** Shards folded in so far, in ingest order. */
    std::vector<ShardInfo> shards;

    // Merged dynamic statistics (computeTraceStats shape).
    std::vector<std::uint64_t> run_count;
    std::vector<std::uint64_t> bytes_fetched;
    std::uint64_t total_runs = 0;
    std::uint64_t total_bytes = 0;

    // Merged relationship graphs.
    WeightedGraph wcg;
    WeightedGraph trg_select;
    WeightedGraph trg_place;
    PairDatabase pairs;

    // Queue-occupancy statistics (additive; avg = sum / steps).
    double queue_procs_sum = 0.0;
    std::uint64_t proc_steps = 0;
    std::uint64_t proc_evictions = 0;
    std::uint64_t chunk_evictions = 0;

    /** TRG_select at the last accepted placement (drift baseline). */
    WeightedGraph baseline_select;
    /** Last accepted layout addresses (empty = never placed). */
    std::vector<std::uint64_t> layout_addresses;
    /** Algorithm that produced the stored layout. */
    std::string layout_algorithm;
};

/** One shard's contribution, the body of a kShard journal record. */
struct ShardDelta
{
    ShardInfo info;
    std::vector<std::uint64_t> run_count;
    std::vector<std::uint64_t> bytes_fetched;
    std::uint64_t total_runs = 0;
    std::uint64_t total_bytes = 0;
    WeightedGraph wcg;
    WeightedGraph trg_select;
    WeightedGraph trg_place;
    PairDatabase pairs;
    double queue_procs_sum = 0.0;
    std::uint64_t proc_steps = 0;
    std::uint64_t proc_evictions = 0;
    std::uint64_t chunk_evictions = 0;
};

/** Journal record kinds. */
enum class StoreRecordKind : std::uint8_t
{
    /** Merge a ShardDelta into the standing profile. */
    kShard = 1,
    /** Accept a placement: set layout + drift baseline. */
    kPlace = 2,
};

/** Decoded journal record. */
struct StoreRecord
{
    std::uint64_t seq = 0;
    StoreRecordKind kind = StoreRecordKind::kShard;
    /** kShard body. */
    ShardDelta shard;
    /** kPlace body. */
    std::vector<std::uint64_t> layout_addresses;
    std::string layout_algorithm;
};

/** Byte extent of one journal record (topo_corrupt --target=store). */
struct StoreRecordExtent
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t seq = 0;
};

// --- primitive framing -------------------------------------------------

/** Append a little-endian u64. */
void putU64(std::string &out, std::uint64_t value);
/** Append a little-endian u32. */
void putU32(std::string &out, std::uint32_t value);
/** Append a double as its IEEE-754 bit pattern. */
void putF64(std::string &out, double value);
/** Append a length-prefixed string. */
void putString(std::string &out, const std::string &text);

/** Cursor over a serialized payload; throws corrupt-input on misuse. */
class Reader
{
  public:
    Reader(const std::string &bytes, std::string context)
        : bytes_(bytes), context_(std::move(context))
    {}

    std::uint64_t u64();
    std::uint32_t u32();
    double f64();
    std::uint8_t u8();
    std::string str();
    /** Bytes not yet consumed. */
    std::size_t remaining() const { return bytes_.size() - pos_; }
    /** Require the payload to be fully consumed. */
    void expectEnd() const;

  private:
    const std::string &bytes_;
    std::string context_;
    std::size_t pos_ = 0;

    void need(std::size_t n) const;
};

// --- store artefacts ---------------------------------------------------

/** Serialize the meta payload (config + identity). */
std::string serializeMeta(std::uint64_t store_id,
                          const StoreConfig &config);
/** Decode a meta payload; fills @p store_id. */
StoreConfig deserializeMeta(const std::string &payload,
                            std::uint64_t &store_id);

/** Canonical profile bytes (snapshot body; test state comparison). */
std::string serializeProfile(const StoredProfile &profile);
/** Decode profile bytes produced by serializeProfile. */
StoredProfile deserializeProfile(const std::string &payload,
                                 const std::string &context);

/** Serialize a kShard record body. */
std::string serializeShardDelta(const ShardDelta &delta);
/** Decode a kShard record body. */
ShardDelta deserializeShardDelta(const std::string &payload,
                                 const std::string &context);

/** Frame a payload with magic + crc + size (meta and snapshots). */
std::string frameFile(const char magic[4], const std::string &payload);
/**
 * Unframe a file image; throws a corrupt-input TopoError on bad
 * magic, truncation, size mismatch, or CRC mismatch.
 */
std::string unframeFile(const char magic[4], const std::string &bytes,
                        const std::string &context);

/** Serialize one journal record (seq + kind + body, framed). */
std::string frameRecord(std::uint64_t seq, StoreRecordKind kind,
                        const std::string &body);

/** Journal file header bytes for a store id. */
std::string journalHeader(std::uint64_t store_id);
/** Size of the journal header in bytes. */
std::size_t journalHeaderSize();

/**
 * Result of scanning a journal image: the records of the valid
 * prefix, where that prefix ends, and how much was discarded. A torn
 * or corrupt record ends the scan — the suffix from it on is dropped
 * (the write-ahead "valid prefix" rule), never partially applied.
 */
struct JournalScan
{
    std::vector<StoreRecord> records;
    std::vector<StoreRecordExtent> extents;
    /** One past the last valid record (>= header size). */
    std::size_t valid_end = 0;
    /** Bytes dropped after valid_end. */
    std::size_t dropped_bytes = 0;
    /** Torn/corrupt records dropped (0 or 1 + unreachable suffix). */
    std::uint64_t dropped_records = 0;
    /** Store id from the header. */
    std::uint64_t store_id = 0;
};

/**
 * Scan a journal image. Throws a corrupt-input TopoError only when
 * the *header* is unusable; damaged records merely end the valid
 * prefix. Sequence numbers must be strictly increasing by 1; a gap
 * (e.g. an excised record) also ends the prefix.
 */
JournalScan scanJournal(const std::string &bytes,
                        const std::string &context);

} // namespace topo

#endif // TOPO_STORE_STORE_CODEC_HH
