/**
 * @file
 * ProfileStore: the crash-consistent persistent profile database
 * (DESIGN.md §12).
 *
 * A store is a directory:
 *
 *   store.meta        immutable identity + configuration ("TOPM")
 *   snapshot-0.tps    dual-slot profile snapshots ("TOPS"); slot is
 *   snapshot-1.tps    generation % 2, the two newest generations kept
 *   journal.tpj       append-only write-ahead journal ("TOPJ")
 *
 * Write-ahead discipline: every mutation (shard ingest, accepted
 * placement) is serialized as one CRC-framed journal record, appended,
 * fsynced, and only then applied to the in-memory profile. Open
 * replays the journal on top of the newest valid snapshot; a torn or
 * corrupt record ends the valid prefix — torn writes never poison the
 * store, they only lose the uncommitted suffix. When the newest
 * snapshot fails its CRC the previous generation is salvaged, and
 * because compaction keeps every journal record newer than that older
 * generation's applied sequence, salvage + replay is lossless.
 *
 * Incremental re-placement: the store remembers TRG_select as it was
 * at the last accepted placement (the drift baseline). place() only
 * recomputes the layout when the L1 edge-weight delta ratio against
 * the baseline exceeds a threshold (or when forced / never placed).
 *
 * Determinism: deltas are serialized bit-exactly (IEEE-754 bit
 * patterns) and applied in journal order on both the ingest path and
 * the replay path, so a reopened store's profile equals the in-memory
 * fold of the same shards to the last bit.
 */

#ifndef TOPO_STORE_PROFILE_STORE_HH
#define TOPO_STORE_PROFILE_STORE_HH

#include <cstdint>
#include <string>

#include "topo/placement/popularity.hh"
#include "topo/program/layout.hh"
#include "topo/sampling/sample_plan.hh"
#include "topo/store/store_codec.hh"
#include "topo/trace/trace.hh"

namespace topo
{

class DecisionLog;

/** What open() had to do to bring the store up. */
struct StoreOpenStats
{
    /** Snapshot generation the profile was loaded from. */
    std::uint64_t snapshot_generation = 0;
    /** True when the newest snapshot was unusable and an older one
     * was used instead. */
    bool salvaged = false;
    /** Journal records replayed on top of the snapshot. */
    std::uint64_t replayed_records = 0;
    /** Journal bytes discarded after the valid prefix. */
    std::uint64_t dropped_bytes = 0;
    /** Torn/corrupt journal records discarded. */
    std::uint64_t dropped_records = 0;
};

/** Outcome of ProfileStore::place(). */
struct StorePlaceResult
{
    /** TRG drift against the baseline (infinity when never placed). */
    double drift = 0.0;
    /** True when a new layout was computed and journaled. */
    bool placed = false;
    /** The store's current layout (new or retained). */
    Layout layout;
    /** Algorithm of the current layout. */
    std::string algorithm;
    /** Popularity mask used (meaningful when placed). */
    PopularSet popular;
};

/** An empty profile sized for @p config (all-zero statistics). */
StoredProfile emptyProfile(const StoreConfig &config);

/**
 * Profile one trace into a mergeable delta. The TRGs are accumulated
 * UNMASKED (no popularity restriction): the popular set depends on
 * every shard merged so far, so it is applied at placement time from
 * the merged statistics instead — the one semantic difference from
 * the single-shot topo_place pipeline.
 */
ShardDelta buildShardDelta(const StoreConfig &config,
                           const std::string &label, const Trace &trace);

/**
 * Sampled variant: with an active @p sampling, the WCG and TRGs are
 * weighted estimates over the trace's representative segments
 * (buildSampledProfile) — the per-procedure statistics stay exact
 * (computeTraceStats is a cheap linear pass). Ingesting a sampled
 * delta is indistinguishable from ingesting an exact one; only the
 * edge weights carry estimation error. Falls through to the exact
 * build when sampling is off.
 */
ShardDelta buildShardDelta(const StoreConfig &config,
                           const std::string &label, const Trace &trace,
                           const SamplingOptions &sampling);

/** Fold a delta into a profile (order-sensitive, bit-deterministic). */
void applyShardDelta(StoredProfile &profile, const ShardDelta &delta);

/**
 * L1 edge-weight delta ratio between two TRGs:
 * sum(|cur(e) - base(e)|) over the edge union, divided by the total
 * baseline weight. Infinity when the baseline is empty but the
 * current graph is not; 0 when both are empty.
 */
double trgDrift(const WeightedGraph &cur, const WeightedGraph &base);

/**
 * Compute a placement from a (merged) profile: popularity from the
 * merged statistics, then the named algorithm (gbsc | ph | hkc |
 * default). Pure — shared by ProfileStore::place() and the tests'
 * reopened-vs-fresh equality check.
 */
StorePlaceResult placeProfile(const StoreConfig &config,
                              const StoredProfile &profile,
                              const std::string &algorithm,
                              DecisionLog *decisions = nullptr);

/** The journaled on-disk profile store. */
class ProfileStore
{
  public:
    /**
     * Create a store directory (mkdir if absent): snapshot
     * generation 0 of an empty profile, an empty journal, and the
     * meta file (written last — its presence marks a complete init).
     * Fails if the directory already holds a store.
     */
    static void init(const std::string &dir, const StoreConfig &config);

    /**
     * Open a store: load the newest valid snapshot (salvaging the
     * older generation when the newest is torn or corrupt), then
     * replay the journal's valid prefix. Throws a corrupt-input
     * TopoError only when no snapshot generation is usable or the
     * artefacts disagree on the store id.
     */
    static ProfileStore open(const std::string &dir);

    /** Immutable configuration fixed at init. */
    const StoreConfig &config() const { return config_; }
    /** The standing merged profile. */
    const StoredProfile &profile() const { return profile_; }
    /** What open() did. */
    const StoreOpenStats &openStats() const { return open_stats_; }
    /** Store directory. */
    const std::string &dir() const { return dir_; }
    /** Store identity (random-free hash of the initial config). */
    std::uint64_t storeId() const { return store_id_; }
    /** Newest valid snapshot generation. */
    std::uint64_t generation() const { return generation_; }
    /** Sequence number of the last applied journal record. */
    std::uint64_t appliedSeq() const { return applied_seq_; }
    /** Current TRG drift against the placement baseline. */
    double drift() const;

    /**
     * Ingest one shard: journal the delta (append + fsync), then fold
     * it into the profile. On any failure mid-append the on-disk
     * journal at worst carries a torn tail that the next open drops.
     */
    void ingest(const ShardDelta &delta);

    /** Convenience: profile a trace and ingest it. */
    void ingestTrace(const std::string &label, const Trace &trace);

    /**
     * Incremental re-placement. Computes the drift of the current
     * TRG_select against the baseline captured at the last accepted
     * placement; when drift >= @p threshold (or @p force, or no
     * placement exists yet) a new layout is computed with
     * @p algorithm, journaled as a kPlace record, and adopted as the
     * new baseline. Otherwise the stored layout is returned.
     */
    StorePlaceResult place(const std::string &algorithm,
                           double threshold, bool force = false,
                           DecisionLog *decisions = nullptr);

    /**
     * Checkpoint: write the profile as snapshot generation + 1
     * (atomically, into the alternate slot), then rewrite the journal
     * keeping only records newer than the OLDER retained snapshot —
     * so falling back one generation on a future salvage loses
     * nothing. Both steps are individually atomic; a crash between
     * them leaves a store that opens to the same logical state.
     */
    void compact();

  private:
    ProfileStore() = default;

    void appendRecord(StoreRecordKind kind, const std::string &body);
    void applyPlace(const std::vector<std::uint64_t> &addresses,
                    const std::string &algorithm);
    std::string snapshotPath(std::uint64_t generation) const;
    std::string journalPath() const;
    std::string metaPath() const;
    void writeSnapshot(std::uint64_t generation);

    std::string dir_;
    std::uint64_t store_id_ = 0;
    StoreConfig config_;
    StoredProfile profile_;
    StoreOpenStats open_stats_;
    /** Newest valid snapshot generation. */
    std::uint64_t generation_ = 0;
    /** applied_seq recorded in that snapshot. */
    std::uint64_t snapshot_applied_seq_ = 0;
    /** applied_seq of the older retained snapshot (journal floor). */
    std::uint64_t older_applied_seq_ = 0;
    /** Last journal sequence applied to profile_. */
    std::uint64_t applied_seq_ = 0;
};

} // namespace topo

#endif // TOPO_STORE_PROFILE_STORE_HH
