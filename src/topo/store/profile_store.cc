#include "topo/store/profile_store.hh"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/placement/decision_log.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/profile/chunk_map.hh"
#include "topo/profile/pair_database.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/sampling/sampled_profile.hh"
#include "topo/resilience/checkpoint.hh"
#include "topo/resilience/crc32.hh"
#include "topo/resilience/durable_io.hh"
#include "topo/resilience/fault.hh"
#include "topo/trace/trace_stats.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

constexpr char kSnapshotMagic[4] = {'T', 'O', 'P', 'S'};
constexpr char kMetaMagic[4] = {'T', 'O', 'P', 'M'};
constexpr std::uint64_t kSnapshotVersion = 1;

Counter &
storeCounter(const char *name)
{
    return MetricsRegistry::global().counter(name);
}

bool
fileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

/** One parsed snapshot slot. */
struct SnapshotImage
{
    bool present = false;
    bool valid = false;
    std::uint64_t generation = 0;
    std::uint64_t applied_seq = 0;
    StoredProfile profile;
};

std::string
snapshotPayload(std::uint64_t store_id, std::uint64_t generation,
                std::uint64_t applied_seq,
                const StoredProfile &profile)
{
    std::string payload;
    putU64(payload, kSnapshotVersion);
    putU64(payload, store_id);
    putU64(payload, generation);
    putU64(payload, applied_seq);
    putString(payload, serializeProfile(profile));
    return payload;
}

SnapshotImage
parseSnapshot(const std::string &path, std::uint64_t store_id)
{
    SnapshotImage image;
    if (!fileExists(path))
        return image;
    image.present = true;
    try {
        const std::string bytes =
            readFileBytes(path, "store.snapshot.read");
        const std::string payload =
            unframeFile(kSnapshotMagic, bytes, path);
        Reader in(payload, path);
        const std::uint64_t version = in.u64();
        requireData(version == kSnapshotVersion,
                    "unsupported snapshot version " +
                        std::to_string(version),
                    path);
        const std::uint64_t sid = in.u64();
        requireData(sid == store_id, "snapshot store id mismatch",
                    path);
        image.generation = in.u64();
        image.applied_seq = in.u64();
        const std::string profile_bytes = in.str();
        in.expectEnd();
        image.profile = deserializeProfile(profile_bytes, path);
        image.valid = true;
    } catch (const TopoError &e) {
        logWarn("store", "unusable snapshot",
                {{"file", path}, {"error", e.what()}});
    }
    return image;
}

const PlacementAlgorithm &
algorithmByName(const std::string &name)
{
    static const DefaultPlacement def;
    static const PettisHansen ph;
    static const CacheColoring hkc;
    static const Gbsc gbsc;
    if (name == "gbsc")
        return gbsc;
    if (name == "ph")
        return ph;
    if (name == "hkc")
        return hkc;
    if (name == "default")
        return def;
    fail("unknown placement algorithm '" + name +
         "' (use gbsc, ph, hkc, or default)");
}

Layout
layoutFromAddresses(const std::vector<std::uint64_t> &addresses)
{
    Layout layout(addresses.size());
    for (std::size_t i = 0; i < addresses.size(); ++i)
        layout.setAddress(static_cast<ProcId>(i), addresses[i]);
    return layout;
}

std::vector<std::uint64_t>
addressesFromLayout(const Layout &layout)
{
    std::vector<std::uint64_t> addresses(layout.procCount());
    for (std::size_t i = 0; i < layout.procCount(); ++i)
        addresses[i] = layout.address(static_cast<ProcId>(i));
    return addresses;
}

} // namespace

StoredProfile
emptyProfile(const StoreConfig &config)
{
    StoredProfile profile;
    const std::size_t procs = config.program.procCount();
    profile.run_count.assign(procs, 0);
    profile.bytes_fetched.assign(procs, 0);
    profile.wcg = WeightedGraph(procs);
    profile.trg_select = WeightedGraph(procs);
    profile.trg_place = WeightedGraph(
        ChunkMap(config.program, config.chunk_bytes).chunkCount());
    profile.baseline_select = WeightedGraph(procs);
    return profile;
}

ShardDelta
buildShardDelta(const StoreConfig &config, const std::string &label,
                const Trace &trace)
{
    return buildShardDelta(config, label, trace, SamplingOptions{});
}

ShardDelta
buildShardDelta(const StoreConfig &config, const std::string &label,
                const Trace &trace, const SamplingOptions &sampling)
{
    require(trace.procCount() == config.program.procCount(),
            "shard trace and store program disagree on the procedure "
            "count");
    trace.validate(config.program);

    ShardDelta delta;
    delta.info.label = label;
    delta.info.events = trace.size();

    const TraceStats stats = computeTraceStats(config.program, trace);
    delta.run_count = stats.run_count;
    delta.bytes_fetched = stats.bytes_fetched;
    delta.total_runs = stats.total_runs;
    delta.total_bytes = stats.total_bytes;

    const ChunkMap chunks(config.program, config.chunk_bytes);
    TrgBuildOptions topts;
    topts.byte_budget = config.byte_budget;
    // No popularity mask: the popular set depends on all shards and
    // is therefore applied at placement time, not at ingest time.
    if (sampling.active()) {
        require(!config.build_pairs,
                "sampled ingest: the pair database has no sampled "
                "build; drop pairs or sampling");
        const SamplePlan plan = buildSamplePlan(
            config.program, trace, config.cache.line_bytes, sampling);
        const SampledProfileResult profile = buildSampledProfile(
            config.program, chunks, trace, plan, topts);
        delta.wcg = profile.wcg;
        delta.trg_select = profile.trg_select;
        delta.trg_place = profile.trg_place;
        delta.queue_procs_sum =
            profile.avg_queue_procs *
            static_cast<double>(profile.proc_steps);
        delta.proc_steps = profile.proc_steps;
        delta.proc_evictions = profile.proc_evictions;
        delta.chunk_evictions = profile.chunk_evictions;
        return delta;
    }

    delta.wcg = buildWcg(config.program, trace);
    const TrgBuildResult trgs =
        buildTrgs(config.program, chunks, trace, topts);
    delta.trg_select = trgs.select;
    delta.trg_place = trgs.place;
    delta.queue_procs_sum =
        trgs.avg_queue_procs * static_cast<double>(trgs.proc_steps);
    delta.proc_steps = trgs.proc_steps;
    delta.proc_evictions = trgs.proc_evictions;
    delta.chunk_evictions = trgs.chunk_evictions;

    if (config.build_pairs) {
        PairBuildOptions popts;
        popts.byte_budget = config.byte_budget;
        popts.pair_window = config.pair_window;
        delta.pairs =
            buildPairDatabase(config.program, trace, popts);
    }
    return delta;
}

void
applyShardDelta(StoredProfile &profile, const ShardDelta &delta)
{
    if (profile.run_count.empty() && !delta.run_count.empty()) {
        profile.run_count.assign(delta.run_count.size(), 0);
        profile.bytes_fetched.assign(delta.bytes_fetched.size(), 0);
        profile.wcg = WeightedGraph(delta.wcg.nodeCount());
        profile.trg_select = WeightedGraph(
            delta.trg_select.nodeCount());
        profile.trg_place = WeightedGraph(delta.trg_place.nodeCount());
        profile.baseline_select =
            WeightedGraph(delta.trg_select.nodeCount());
    }
    require(profile.run_count.size() == delta.run_count.size(),
            "shard delta and profile disagree on the procedure count");
    for (std::size_t i = 0; i < delta.run_count.size(); ++i) {
        profile.run_count[i] += delta.run_count[i];
        profile.bytes_fetched[i] += delta.bytes_fetched[i];
    }
    profile.total_runs += delta.total_runs;
    profile.total_bytes += delta.total_bytes;
    profile.wcg.addGraph(delta.wcg);
    profile.trg_select.addGraph(delta.trg_select);
    profile.trg_place.addGraph(delta.trg_place);
    profile.pairs.merge(delta.pairs);
    profile.queue_procs_sum += delta.queue_procs_sum;
    profile.proc_steps += delta.proc_steps;
    profile.proc_evictions += delta.proc_evictions;
    profile.chunk_evictions += delta.chunk_evictions;
    profile.shards.push_back(delta.info);
}

double
trgDrift(const WeightedGraph &cur, const WeightedGraph &base)
{
    const std::vector<WeightedGraph::Edge> ce = cur.edges();
    const std::vector<WeightedGraph::Edge> be = base.edges();
    double delta_sum = 0.0;
    double base_sum = 0.0;
    std::size_t i = 0;
    std::size_t j = 0;
    auto keyOf = [](const WeightedGraph::Edge &e) {
        return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
    };
    while (i < ce.size() || j < be.size()) {
        if (j == be.size() ||
            (i < ce.size() && keyOf(ce[i]) < keyOf(be[j]))) {
            delta_sum += std::abs(ce[i].weight);
            ++i;
        } else if (i == ce.size() || keyOf(be[j]) < keyOf(ce[i])) {
            delta_sum += std::abs(be[j].weight);
            base_sum += be[j].weight;
            ++j;
        } else {
            delta_sum += std::abs(ce[i].weight - be[j].weight);
            base_sum += be[j].weight;
            ++i;
            ++j;
        }
    }
    if (base_sum <= 0.0) {
        return delta_sum > 0.0
                   ? std::numeric_limits<double>::infinity()
                   : 0.0;
    }
    return delta_sum / base_sum;
}

StorePlaceResult
placeProfile(const StoreConfig &config, const StoredProfile &profile,
             const std::string &algorithm, DecisionLog *decisions)
{
    TraceStats stats;
    stats.run_count = profile.run_count;
    stats.bytes_fetched = profile.bytes_fetched;
    stats.total_runs = profile.total_runs;
    stats.total_bytes = profile.total_bytes;
    for (std::uint64_t runs : profile.run_count)
        stats.procs_touched += runs > 0 ? 1 : 0;

    PopularityOptions popts;
    popts.coverage = config.coverage;
    StorePlaceResult result;
    result.popular = selectPopular(config.program, stats, popts);

    const ChunkMap chunks(config.program, config.chunk_bytes);
    PlacementContext ctx;
    ctx.program = &config.program;
    ctx.cache = config.cache;
    ctx.chunks = &chunks;
    ctx.wcg = &profile.wcg;
    ctx.trg_select = &profile.trg_select;
    ctx.trg_place = &profile.trg_place;
    if (config.build_pairs)
        ctx.pairs = &profile.pairs;
    ctx.popular = result.popular.mask;
    ctx.heat.assign(config.program.procCount(), 0.0);
    for (std::size_t i = 0; i < config.program.procCount(); ++i)
        ctx.heat[i] = static_cast<double>(profile.bytes_fetched[i]);
    if (decisions) {
        decisions->setAlgorithm(algorithm);
        decisions->setCache(config.cache);
        ctx.decisions = decisions;
    }

    const PlacementAlgorithm &algo = algorithmByName(algorithm);
    result.layout = algo.place(ctx);
    result.layout.validate(config.program, config.cache.line_bytes);
    result.algorithm = algorithm;
    result.placed = true;
    return result;
}

std::string
ProfileStore::snapshotPath(std::uint64_t generation) const
{
    return dir_ + "/snapshot-" + std::to_string(generation % 2) +
           ".tps";
}

std::string
ProfileStore::journalPath() const
{
    return dir_ + "/journal.tpj";
}

std::string
ProfileStore::metaPath() const
{
    return dir_ + "/store.meta";
}

void
ProfileStore::writeSnapshot(std::uint64_t generation)
{
    const std::string payload = snapshotPayload(
        store_id_, generation, applied_seq_, profile_);
    atomicReplace(snapshotPath(generation),
                  frameFile(kSnapshotMagic, payload),
                  "store.snapshot");
}

void
ProfileStore::init(const std::string &dir, const StoreConfig &config)
{
    config.cache.validate();
    require(config.program.procCount() > 0,
            "store init: the program has no procedures");
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        fail("cannot create store directory '" + dir +
             "': " + std::strerror(errno));
    }
    ProfileStore store;
    store.dir_ = dir;
    require(!fileExists(store.metaPath()),
            "'" + dir + "' already holds a profile store");

    // Identity: a fingerprint of the configuration. Deterministic on
    // purpose — reproducible runs build bit-identical stores.
    const std::string meta_payload = serializeMeta(0, config);
    store.store_id_ = fingerprintMix(crc32(meta_payload),
                                     meta_payload.size());
    store.config_ = config;
    store.profile_ = emptyProfile(config);

    // Snapshot and journal first, meta last: the meta file's presence
    // marks a completed init, so a crash mid-init never leaves a
    // half-built store that open() would accept.
    store.writeSnapshot(0);
    atomicReplace(store.journalPath(),
                  journalHeader(store.store_id_),
                  "store.journal.create");
    atomicReplace(store.metaPath(),
                  frameFile(kMetaMagic,
                            serializeMeta(store.store_id_, config)),
                  "store.meta");
    logInfo("store", "initialized",
            {{"dir", dir},
             {"procs", config.program.procCount()}});
}

ProfileStore
ProfileStore::open(const std::string &dir)
{
    PhaseTimer timer("store.open");
    ProfileStore store;
    store.dir_ = dir;
    require(fileExists(store.metaPath()),
            "'" + dir + "' is not a profile store (no store.meta)");
    const std::string meta_bytes =
        readFileBytes(store.metaPath(), "store.meta.read");
    const std::string meta_payload =
        unframeFile(kMetaMagic, meta_bytes, store.metaPath());
    store.config_ = deserializeMeta(meta_payload, store.store_id_);

    // Newest valid snapshot wins; the older generation is the salvage
    // fallback when the newest is torn or corrupt.
    const SnapshotImage slot0 =
        parseSnapshot(store.snapshotPath(0), store.store_id_);
    const SnapshotImage slot1 =
        parseSnapshot(store.snapshotPath(1), store.store_id_);
    const SnapshotImage *best = nullptr;
    const SnapshotImage *other = nullptr;
    for (const SnapshotImage *slot : {&slot0, &slot1}) {
        if (!slot->valid)
            continue;
        if (best == nullptr || slot->generation > best->generation) {
            other = best;
            best = slot;
        } else {
            other = slot;
        }
    }
    if (best == nullptr) {
        failCorrupt("no usable profile snapshot (both generations "
                    "damaged)",
                    dir);
    }
    const bool salvaged =
        (slot0.present && !slot0.valid) ||
        (slot1.present && !slot1.valid);
    if (salvaged) {
        storeCounter("store.snapshot_salvage").add();
        logWarn("store", "salvaged older snapshot generation",
                {{"dir", dir}, {"generation", best->generation}});
    }
    store.profile_ = best->profile;
    store.generation_ = best->generation;
    store.snapshot_applied_seq_ = best->applied_seq;
    store.older_applied_seq_ =
        other != nullptr ? other->applied_seq : 0;
    store.applied_seq_ = best->applied_seq;
    store.open_stats_.snapshot_generation = best->generation;
    store.open_stats_.salvaged = salvaged;

    // Replay the journal's valid prefix on top of the snapshot.
    const std::string journal_bytes =
        readFileBytes(store.journalPath(), "store.journal.read");
    const JournalScan scan =
        scanJournal(journal_bytes, store.journalPath());
    requireData(scan.store_id == store.store_id_,
                "journal store id mismatch", store.journalPath());
    if (scan.dropped_bytes > 0) {
        storeCounter("store.journal_dropped_records")
            .add(scan.dropped_records);
        logWarn("store", "dropped torn journal tail",
                {{"dir", dir},
                 {"bytes", scan.dropped_bytes},
                 {"valid_end", scan.valid_end}});
    }
    for (const StoreRecord &record : scan.records) {
        if (record.seq <= store.applied_seq_)
            continue; // already folded into the snapshot
        requireData(record.seq == store.applied_seq_ + 1,
                    "journal is missing records before seq " +
                        std::to_string(record.seq),
                    store.journalPath());
        if (record.kind == StoreRecordKind::kShard)
            applyShardDelta(store.profile_, record.shard);
        else
            store.applyPlace(record.layout_addresses,
                             record.layout_algorithm);
        store.applied_seq_ = record.seq;
        ++store.open_stats_.replayed_records;
    }
    store.open_stats_.dropped_bytes = scan.dropped_bytes;
    store.open_stats_.dropped_records = scan.dropped_records;

    // A torn tail is permanent garbage after the valid prefix; trim
    // it now so future appends extend the valid prefix instead of
    // hiding behind the damage.
    if (scan.dropped_bytes > 0) {
        Fd fd(::open(store.journalPath().c_str(), O_WRONLY));
        require(fd.valid(), "cannot reopen journal for trim");
        truncateFd(fd, scan.valid_end, "store.journal.trim");
    }
    return store;
}

void
ProfileStore::appendRecord(StoreRecordKind kind,
                           const std::string &body)
{
    const std::uint64_t seq = applied_seq_ + 1;
    const std::string record = frameRecord(seq, kind, body);
    Fd fd = openAppend(journalPath());
    // The record is written in two halves with a crash point between
    // them so the crash-matrix test can manufacture a torn record on
    // the real append path; without an installed crash point the two
    // writes are equivalent to one.
    const std::size_t half = record.size() / 2;
    writeAll(fd, record.data(), half, "store.journal.append");
    faultMaybeCrash("store.journal.mid_record");
    writeAll(fd, record.data() + half, record.size() - half,
             "store.journal.append");
    faultMaybeCrash("store.journal.pre_fsync");
    fsyncFd(fd, "store.journal.fsync");
    faultMaybeCrash("store.journal.post_fsync");
    storeCounter("store.journal_appends").add();
}

void
ProfileStore::applyPlace(const std::vector<std::uint64_t> &addresses,
                         const std::string &algorithm)
{
    profile_.layout_addresses = addresses;
    profile_.layout_algorithm = algorithm;
    profile_.baseline_select = profile_.trg_select;
}

void
ProfileStore::ingest(const ShardDelta &delta)
{
    PhaseTimer timer("store.ingest");
    ShardDelta numbered = delta;
    numbered.info.seq = applied_seq_ + 1;
    appendRecord(StoreRecordKind::kShard,
                 serializeShardDelta(numbered));
    // The record is durable; applying it cannot be lost any more.
    applyShardDelta(profile_, numbered);
    ++applied_seq_;
    storeCounter("store.ingests").add();
    logInfo("store", "ingested shard",
            {{"label", numbered.info.label},
             {"seq", numbered.info.seq},
             {"events", numbered.info.events}});
}

void
ProfileStore::ingestTrace(const std::string &label, const Trace &trace)
{
    ingest(buildShardDelta(config_, label, trace));
}

double
ProfileStore::drift() const
{
    return trgDrift(profile_.trg_select, profile_.baseline_select);
}

StorePlaceResult
ProfileStore::place(const std::string &algorithm, double threshold,
                    bool force, DecisionLog *decisions)
{
    PhaseTimer timer("store.place");
    const double current_drift = drift();
    const bool never_placed = profile_.layout_algorithm.empty();
    if (!force && !never_placed && current_drift < threshold) {
        StorePlaceResult result;
        result.drift = current_drift;
        result.placed = false;
        result.layout =
            layoutFromAddresses(profile_.layout_addresses);
        result.algorithm = profile_.layout_algorithm;
        logInfo("store", "placement retained",
                {{"drift", current_drift},
                 {"threshold", threshold}});
        return result;
    }
    StorePlaceResult result =
        placeProfile(config_, profile_, algorithm, decisions);
    result.drift = current_drift;
    const std::vector<std::uint64_t> addresses =
        addressesFromLayout(result.layout);
    std::string body;
    putString(body, algorithm);
    putU64(body, addresses.size());
    for (std::uint64_t a : addresses)
        putU64(body, a);
    appendRecord(StoreRecordKind::kPlace, body);
    applyPlace(addresses, algorithm);
    ++applied_seq_;
    logInfo("store", "placement recomputed",
            {{"algorithm", algorithm},
             {"drift", current_drift},
             {"threshold", threshold}});
    return result;
}

void
ProfileStore::compact()
{
    PhaseTimer timer("store.compact");
    const std::uint64_t new_generation = generation_ + 1;
    writeSnapshot(new_generation);

    // Rewrite the journal keeping every record newer than the OLDER
    // retained snapshot (the one we just demoted), so a future
    // salvage to that generation can still replay to the present.
    const std::uint64_t keep_after = snapshot_applied_seq_;
    const std::string journal_bytes =
        readFileBytes(journalPath(), "store.journal.read");
    const JournalScan scan = scanJournal(journal_bytes, journalPath());
    std::string rewritten = journalHeader(store_id_);
    for (const StoreRecordExtent &extent : scan.extents) {
        if (extent.seq > keep_after) {
            rewritten.append(journal_bytes, extent.begin,
                             extent.end - extent.begin);
        }
    }
    faultMaybeCrash("store.compact.pre_journal");
    atomicReplace(journalPath(), rewritten, "store.compact");

    older_applied_seq_ = snapshot_applied_seq_;
    snapshot_applied_seq_ = applied_seq_;
    generation_ = new_generation;
    storeCounter("store.compactions").add();
    logInfo("store", "compacted",
            {{"generation", new_generation},
             {"applied_seq", applied_seq_},
             {"journal_bytes", rewritten.size()}});
}

} // namespace topo
