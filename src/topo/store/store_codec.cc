#include "topo/store/store_codec.hh"

#include <bit>
#include <cstring>

#include "topo/resilience/crc32.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Ceiling on any length field before allocation (1 GiB). */
constexpr std::uint64_t kMaxLen = 1ULL << 30;
/** Ceiling on one journal record payload (256 MiB). */
constexpr std::uint32_t kMaxRecordLen = 1u << 28;

constexpr std::uint64_t kMetaVersion = 1;
constexpr std::uint64_t kProfileVersion = 1;
constexpr std::uint64_t kJournalVersion = 1;

constexpr char kJournalMagic[4] = {'T', 'O', 'P', 'J'};

void
putGraph(std::string &out, const WeightedGraph &graph)
{
    putU64(out, graph.nodeCount());
    const std::vector<WeightedGraph::Edge> edges = graph.edges();
    putU64(out, edges.size());
    for (const WeightedGraph::Edge &e : edges) {
        putU32(out, e.u);
        putU32(out, e.v);
        putF64(out, e.weight);
    }
}

WeightedGraph
getGraph(Reader &in)
{
    const std::uint64_t nodes = in.u64();
    requireData(nodes <= kMaxLen, "graph node count implausible",
                "store codec");
    WeightedGraph graph(static_cast<std::size_t>(nodes));
    const std::uint64_t edges = in.u64();
    requireData(edges <= kMaxLen, "graph edge count implausible",
                "store codec");
    for (std::uint64_t i = 0; i < edges; ++i) {
        const BlockId u = in.u32();
        const BlockId v = in.u32();
        const double w = in.f64();
        graph.addWeight(u, v, w);
    }
    return graph;
}

void
putPairs(std::string &out, const PairDatabase &pairs)
{
    const std::vector<PairDatabase::Entry> entries = pairs.entries();
    putU64(out, entries.size());
    for (const PairDatabase::Entry &e : entries) {
        putU32(out, e.p);
        putU32(out, e.r);
        putU32(out, e.s);
        putF64(out, e.weight);
    }
}

PairDatabase
getPairs(Reader &in)
{
    PairDatabase pairs;
    const std::uint64_t count = in.u64();
    requireData(count <= kMaxLen, "pair count implausible",
                "store codec");
    for (std::uint64_t i = 0; i < count; ++i) {
        const BlockId p = in.u32();
        const BlockId r = in.u32();
        const BlockId s = in.u32();
        const double w = in.f64();
        pairs.add(p, r, s, w);
    }
    return pairs;
}

void
putU64Vec(std::string &out, const std::vector<std::uint64_t> &values)
{
    putU64(out, values.size());
    for (std::uint64_t v : values)
        putU64(out, v);
}

std::vector<std::uint64_t>
getU64Vec(Reader &in)
{
    const std::uint64_t count = in.u64();
    requireData(count <= kMaxLen, "vector length implausible",
                "store codec");
    std::vector<std::uint64_t> values(
        static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i)
        values[static_cast<std::size_t>(i)] = in.u64();
    return values;
}

void
putShardBody(std::string &out, const ShardDelta &delta)
{
    putString(out, delta.info.label);
    putU64(out, delta.info.events);
    putU64(out, delta.info.seq);
    putU64Vec(out, delta.run_count);
    putU64Vec(out, delta.bytes_fetched);
    putU64(out, delta.total_runs);
    putU64(out, delta.total_bytes);
    putGraph(out, delta.wcg);
    putGraph(out, delta.trg_select);
    putGraph(out, delta.trg_place);
    putPairs(out, delta.pairs);
    putF64(out, delta.queue_procs_sum);
    putU64(out, delta.proc_steps);
    putU64(out, delta.proc_evictions);
    putU64(out, delta.chunk_evictions);
}

ShardDelta
getShardBody(Reader &in)
{
    ShardDelta delta;
    delta.info.label = in.str();
    delta.info.events = in.u64();
    delta.info.seq = in.u64();
    delta.run_count = getU64Vec(in);
    delta.bytes_fetched = getU64Vec(in);
    delta.total_runs = in.u64();
    delta.total_bytes = in.u64();
    delta.wcg = getGraph(in);
    delta.trg_select = getGraph(in);
    delta.trg_place = getGraph(in);
    delta.pairs = getPairs(in);
    delta.queue_procs_sum = in.f64();
    delta.proc_steps = in.u64();
    delta.proc_evictions = in.u64();
    delta.chunk_evictions = in.u64();
    return delta;
}

} // namespace

void
putU64(std::string &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

void
putU32(std::string &out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

void
putF64(std::string &out, double value)
{
    putU64(out, std::bit_cast<std::uint64_t>(value));
}

void
putString(std::string &out, const std::string &text)
{
    putU64(out, text.size());
    out += text;
}

void
Reader::need(std::size_t n) const
{
    requireData(pos_ + n <= bytes_.size(), "truncated payload",
                context_);
}

std::uint64_t
Reader::u64()
{
    need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
    }
    pos_ += 8;
    return value;
}

std::uint32_t
Reader::u32()
{
    need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
    }
    pos_ += 4;
    return value;
}

double
Reader::f64()
{
    return std::bit_cast<double>(u64());
}

std::uint8_t
Reader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::string
Reader::str()
{
    const std::uint64_t len = u64();
    requireData(len <= kMaxLen, "string length implausible", context_);
    need(static_cast<std::size_t>(len));
    std::string text = bytes_.substr(pos_,
                                     static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return text;
}

void
Reader::expectEnd() const
{
    requireData(pos_ == bytes_.size(), "trailing bytes", context_);
}

std::string
serializeMeta(std::uint64_t store_id, const StoreConfig &config)
{
    std::string out;
    putU64(out, kMetaVersion);
    putU64(out, store_id);
    putU32(out, config.cache.size_bytes);
    putU32(out, config.cache.line_bytes);
    putU32(out, config.cache.associativity);
    putU32(out, config.chunk_bytes);
    putU64(out, config.byte_budget);
    putU32(out, config.build_pairs ? 1 : 0);
    putU32(out, config.pair_window);
    putF64(out, config.coverage);
    putString(out, config.program.name());
    putU64(out, config.program.procCount());
    for (const Procedure &proc : config.program.procs()) {
        putString(out, proc.name);
        putU32(out, proc.size_bytes);
    }
    return out;
}

StoreConfig
deserializeMeta(const std::string &payload, std::uint64_t &store_id)
{
    Reader in(payload, "store meta");
    const std::uint64_t version = in.u64();
    requireData(version == kMetaVersion,
                "unsupported store meta version " +
                    std::to_string(version),
                "store meta");
    store_id = in.u64();
    StoreConfig config;
    config.cache.size_bytes = in.u32();
    config.cache.line_bytes = in.u32();
    config.cache.associativity = in.u32();
    config.chunk_bytes = in.u32();
    config.byte_budget = in.u64();
    config.build_pairs = in.u32() != 0;
    config.pair_window = in.u32();
    config.coverage = in.f64();
    const std::string program_name = in.str();
    Program program(program_name);
    const std::uint64_t procs = in.u64();
    requireData(procs <= kMaxLen, "procedure count implausible",
                "store meta");
    for (std::uint64_t i = 0; i < procs; ++i) {
        const std::string name = in.str();
        const std::uint32_t size = in.u32();
        program.addProcedure(name, size);
    }
    in.expectEnd();
    config.program = std::move(program);
    config.cache.validate();
    return config;
}

std::string
serializeProfile(const StoredProfile &profile)
{
    std::string out;
    putU64(out, kProfileVersion);
    putU64(out, profile.shards.size());
    for (const ShardInfo &shard : profile.shards) {
        putString(out, shard.label);
        putU64(out, shard.events);
        putU64(out, shard.seq);
    }
    putU64Vec(out, profile.run_count);
    putU64Vec(out, profile.bytes_fetched);
    putU64(out, profile.total_runs);
    putU64(out, profile.total_bytes);
    putGraph(out, profile.wcg);
    putGraph(out, profile.trg_select);
    putGraph(out, profile.trg_place);
    putPairs(out, profile.pairs);
    putF64(out, profile.queue_procs_sum);
    putU64(out, profile.proc_steps);
    putU64(out, profile.proc_evictions);
    putU64(out, profile.chunk_evictions);
    putGraph(out, profile.baseline_select);
    putU64Vec(out, profile.layout_addresses);
    putString(out, profile.layout_algorithm);
    return out;
}

StoredProfile
deserializeProfile(const std::string &payload,
                   const std::string &context)
{
    Reader in(payload, context);
    const std::uint64_t version = in.u64();
    requireData(version == kProfileVersion,
                "unsupported profile version " +
                    std::to_string(version),
                context);
    StoredProfile profile;
    const std::uint64_t shards = in.u64();
    requireData(shards <= kMaxLen, "shard count implausible", context);
    profile.shards.reserve(static_cast<std::size_t>(shards));
    for (std::uint64_t i = 0; i < shards; ++i) {
        ShardInfo shard;
        shard.label = in.str();
        shard.events = in.u64();
        shard.seq = in.u64();
        profile.shards.push_back(std::move(shard));
    }
    profile.run_count = getU64Vec(in);
    profile.bytes_fetched = getU64Vec(in);
    profile.total_runs = in.u64();
    profile.total_bytes = in.u64();
    profile.wcg = getGraph(in);
    profile.trg_select = getGraph(in);
    profile.trg_place = getGraph(in);
    profile.pairs = getPairs(in);
    profile.queue_procs_sum = in.f64();
    profile.proc_steps = in.u64();
    profile.proc_evictions = in.u64();
    profile.chunk_evictions = in.u64();
    profile.baseline_select = getGraph(in);
    profile.layout_addresses = getU64Vec(in);
    profile.layout_algorithm = in.str();
    in.expectEnd();
    return profile;
}

std::string
serializeShardDelta(const ShardDelta &delta)
{
    std::string out;
    putShardBody(out, delta);
    return out;
}

ShardDelta
deserializeShardDelta(const std::string &payload,
                      const std::string &context)
{
    Reader in(payload, context);
    ShardDelta delta = getShardBody(in);
    in.expectEnd();
    return delta;
}

std::string
frameFile(const char magic[4], const std::string &payload)
{
    std::string file;
    file.reserve(payload.size() + 16);
    file.append(magic, 4);
    putU32(file, crc32(payload));
    putU64(file, payload.size());
    file += payload;
    return file;
}

std::string
unframeFile(const char magic[4], const std::string &bytes,
            const std::string &context)
{
    requireData(bytes.size() >= 16, "file too short", context);
    requireData(bytes.compare(0, 4, magic, 4) == 0, "bad magic",
                context);
    Reader in(bytes, context);
    (void)in.u32(); // skip magic (already checked byte-wise)
    std::uint32_t crc = 0;
    std::memcpy(&crc, bytes.data() + 4, 4); // little-endian host
    std::uint32_t crc_le = 0;
    for (int i = 0; i < 4; ++i) {
        crc_le |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(bytes[4 + i]))
                  << (8 * i);
    }
    std::uint64_t size = 0;
    for (int i = 0; i < 8; ++i) {
        size |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(bytes[8 + i]))
                << (8 * i);
    }
    requireData(size == bytes.size() - 16, "size mismatch", context);
    std::string payload = bytes.substr(16);
    requireData(crc32(payload) == crc_le, "CRC mismatch", context);
    return payload;
}

std::string
frameRecord(std::uint64_t seq, StoreRecordKind kind,
            const std::string &body)
{
    std::string payload;
    payload.reserve(9 + body.size());
    putU64(payload, seq);
    payload.push_back(static_cast<char>(kind));
    payload += body;
    require(payload.size() <= kMaxRecordLen,
            "journal record too large");
    std::string record;
    record.reserve(8 + payload.size());
    putU32(record, static_cast<std::uint32_t>(payload.size()));
    putU32(record, crc32(payload));
    record += payload;
    return record;
}

std::string
journalHeader(std::uint64_t store_id)
{
    std::string header;
    header.append(kJournalMagic, 4);
    putU32(header, static_cast<std::uint32_t>(kJournalVersion));
    putU64(header, store_id);
    return header;
}

std::size_t
journalHeaderSize()
{
    return 16;
}

JournalScan
scanJournal(const std::string &bytes, const std::string &context)
{
    JournalScan scan;
    requireData(bytes.size() >= journalHeaderSize(),
                "journal header truncated", context);
    requireData(bytes.compare(0, 4, kJournalMagic, 4) == 0,
                "bad journal magic", context);
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i) {
        version |= static_cast<std::uint32_t>(
                       static_cast<unsigned char>(bytes[4 + i]))
                   << (8 * i);
    }
    requireData(version == kJournalVersion,
                "unsupported journal version " +
                    std::to_string(version),
                context);
    for (int i = 0; i < 8; ++i) {
        scan.store_id |= static_cast<std::uint64_t>(
                             static_cast<unsigned char>(bytes[8 + i]))
                         << (8 * i);
    }

    std::size_t pos = journalHeaderSize();
    scan.valid_end = pos;
    bool have_prev = false;
    std::uint64_t prev_seq = 0;
    while (pos < bytes.size()) {
        // Record header: u32 length + u32 crc.
        if (pos + 8 > bytes.size())
            break; // torn header
        std::uint32_t len = 0;
        std::uint32_t crc = 0;
        for (int i = 0; i < 4; ++i) {
            len |= static_cast<std::uint32_t>(
                       static_cast<unsigned char>(bytes[pos + i]))
                   << (8 * i);
            crc |= static_cast<std::uint32_t>(
                       static_cast<unsigned char>(bytes[pos + 4 + i]))
                   << (8 * i);
        }
        if (len < 9 || len > kMaxRecordLen)
            break; // implausible framing (corrupt length)
        if (pos + 8 + len > bytes.size())
            break; // torn payload
        const std::string payload = bytes.substr(pos + 8, len);
        if (crc32(payload) != crc)
            break; // corrupt payload
        StoreRecord record;
        Reader in(payload, context + " record");
        record.seq = in.u64();
        const std::uint8_t kind = in.u8();
        if (have_prev && record.seq != prev_seq + 1)
            break; // sequence gap (an excised record)
        try {
            if (kind == static_cast<std::uint8_t>(
                            StoreRecordKind::kShard)) {
                record.kind = StoreRecordKind::kShard;
                record.shard = getShardBody(in);
            } else if (kind == static_cast<std::uint8_t>(
                                   StoreRecordKind::kPlace)) {
                record.kind = StoreRecordKind::kPlace;
                record.layout_algorithm = in.str();
                record.layout_addresses = getU64Vec(in);
            } else {
                break; // unknown kind
            }
            in.expectEnd();
        } catch (const TopoError &) {
            break; // malformed body despite a matching CRC
        }
        have_prev = true;
        prev_seq = record.seq;
        scan.extents.push_back(
            StoreRecordExtent{pos, pos + 8 + len, record.seq});
        scan.records.push_back(std::move(record));
        pos += 8 + len;
        scan.valid_end = pos;
    }
    scan.dropped_bytes = bytes.size() - scan.valid_end;
    if (scan.dropped_bytes > 0)
        scan.dropped_records = 1; // at least the torn/corrupt one
    return scan;
}

} // namespace topo
