/**
 * @file
 * Microsuite: small adversarial workloads with *known* best layouts.
 *
 * Each case isolates one phenomenon the placement algorithms must
 * handle, at a scale where the behaviour is fully understood:
 *
 *  - thrash_pair:    two procedures that alternate and together fit
 *                    the cache — any overlap is pure loss.
 *  - sibling_fanout: one dispatcher alternating among N siblings that
 *                    never call each other (the WCG blind spot).
 *  - phase_flip:     two program phases with disjoint hot sets that
 *                    must share cache space across phases.
 *  - giant_proc:     a procedure larger than the cache whose two hot
 *                    chunks interleave with a small helper (why
 *                    TRG_place chunking exists).
 *  - cold_sandwich:  hot pair separated by dead code in source order
 *                    (the quickstart scenario, as a benchmark).
 *
 * Used by tests (expected-winner assertions) and by the microsuite
 * comparison bench.
 */

#ifndef TOPO_WORKLOAD_MICROSUITE_HH
#define TOPO_WORKLOAD_MICROSUITE_HH

#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/program/program.hh"
#include "topo/trace/trace.hh"

namespace topo
{

/** One microsuite case: program, trace, and its natural cache. */
struct MicroCase
{
    std::string name;
    Program program{"micro"};
    Trace trace{0};
    CacheConfig cache;
    /** What the case demonstrates (printed by the bench). */
    std::string lesson;
};

/** Build every microsuite case. */
std::vector<MicroCase> microsuite();

/** Build a single named case; throws TopoError for unknown names. */
MicroCase microCase(const std::string &name);

} // namespace topo

#endif // TOPO_WORKLOAD_MICROSUITE_HH
