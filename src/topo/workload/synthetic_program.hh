/**
 * @file
 * Generator of synthetic workload models.
 *
 * Produces a WorkloadModel whose *static* shape matches a target
 * benchmark profile (procedure count, total size, popular subset) and
 * whose *dynamic* shape exhibits the temporal phenomena the paper's
 * algorithms exploit: a phase-structured schedule, a call DAG with
 * shared utility procedures, sibling alternation at several temporal
 * distances, hot inner loops and occasional cold calls.
 */

#ifndef TOPO_WORKLOAD_SYNTHETIC_PROGRAM_HH
#define TOPO_WORKLOAD_SYNTHETIC_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/workload/skeleton.hh"

namespace topo
{

/** Target shape of a generated workload (Table 1 analog). */
struct SyntheticSpec
{
    std::string name = "synthetic";
    /** Total number of procedures. */
    std::uint32_t proc_count = 400;
    /** Total text size in bytes. */
    std::uint64_t total_bytes = 600 * 1024;
    /** Number of intended-hot procedures. */
    std::uint32_t popular_count = 100;
    /** Total size of the intended-hot procedures. */
    std::uint64_t popular_bytes = 120 * 1024;
    /** Number of execution phases. */
    std::uint32_t phase_count = 4;
    /** Depth of the call DAG over hot procedures. */
    std::uint32_t ranks = 4;
    /** Fraction of leaf procedures shared across phases (utilities). */
    double shared_frac = 0.25;
    /** Probability a hot call site targets a cold procedure. */
    double cold_call_prob = 0.004;
    /** Mean iterations each time a phase is scheduled. */
    double phase_iterations = 60.0;
    /** Log-normal sigma of procedure sizes (spread). */
    double size_sigma = 0.9;
    /**
     * Mean repeat count of leaf-procedure inner loops. This is the
     * main hit-rate lever: real programs spend most fetches inside
     * tight loops, so leaf segments re-execute ~loop_mean times,
     * keeping the default-layout miss rate in the paper's single-digit
     * band.
     */
    double loop_mean = 10.0;
    /**
     * Cold procedures execute only their first cold_run_cap bytes
     * (error paths and cold helpers return early); their full size
     * still occupies the text segment.
     */
    std::uint32_t cold_run_cap = 1024;
    /** Master seed for the generator. */
    std::uint64_t seed = 1;
};

/**
 * Build a workload model from a spec. Deterministic in the spec.
 *
 * Guarantees: the model validates; every intended-hot procedure is
 * reachable from some phase root; bodies cover each procedure from
 * byte 0 to its last byte; the call graph over procedures is acyclic.
 */
WorkloadModel buildSyntheticWorkload(const SyntheticSpec &spec);

} // namespace topo

#endif // TOPO_WORKLOAD_SYNTHETIC_PROGRAM_HH
