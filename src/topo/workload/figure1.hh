/**
 * @file
 * The paper's Figure 1 micro-example: a main procedure M calling leaf
 * procedures X, Y, Z under two different control-flow histories that
 * produce the *same* WCG but demand *different* layouts.
 *
 * Trace #1: cond alternates — per iteration M calls X or Y. Trace #2:
 * cond is true for the first 40 iterations and false for the last 40.
 * In both, M additionally calls Z every fourth iteration. Procedure
 * sizes are one cache line each and the illustration cache has three
 * lines, as in Section 1.
 */

#ifndef TOPO_WORKLOAD_FIGURE1_HH
#define TOPO_WORKLOAD_FIGURE1_HH

#include "topo/cache/cache_config.hh"
#include "topo/program/program.hh"
#include "topo/trace/trace.hh"

namespace topo
{

/** The Figure 1 cast: program plus the ids of M, X, Y, and Z. */
struct Figure1Example
{
    Program program{"figure1"};
    ProcId m = kInvalidProc;
    ProcId x = kInvalidProc;
    ProcId y = kInvalidProc;
    ProcId z = kInvalidProc;

    /** The 3-line direct-mapped illustration cache. */
    CacheConfig cache;

    /** Trace #1: cond alternates between true and false. */
    Trace trace1() const;
    /** Trace #2: cond true 40 times, then false 40 times. */
    Trace trace2() const;

    /** Number of loop iterations (80 in the paper's example). */
    static constexpr int kIterations = 80;
};

/** Build the Figure 1 example (line size 32 bytes by default). */
Figure1Example makeFigure1Example(std::uint32_t line_bytes = 32);

} // namespace topo

#endif // TOPO_WORKLOAD_FIGURE1_HH
