#include "topo/workload/skeleton.hh"

#include "topo/util/error.hh"

namespace topo
{

void
WorkloadModel::validate() const
{
    require(bodies.size() == program.procCount(),
            "WorkloadModel: one body required per procedure");
    for (std::size_t i = 0; i < bodies.size(); ++i) {
        const auto id = static_cast<ProcId>(i);
        const std::uint32_t size = program.proc(id).size_bytes;
        require(!bodies[i].items.empty(),
                "WorkloadModel: empty body for '" + program.proc(id).name +
                    "'");
        for (const BodyItem &item : bodies[i].items) {
            require(item.run_length > 0,
                    "WorkloadModel: zero-length run in '" +
                        program.proc(id).name + "'");
            require(static_cast<std::uint64_t>(item.run_begin) +
                            item.run_length <=
                        size,
                    "WorkloadModel: run outside procedure '" +
                        program.proc(id).name + "'");
            if (item.callee != kInvalidProc) {
                require(item.callee < program.procCount(),
                        "WorkloadModel: invalid callee in '" +
                            program.proc(id).name + "'");
                require(item.callee != id,
                        "WorkloadModel: direct recursion not supported");
                require(item.call_prob >= 0.0 && item.call_prob <= 1.0,
                        "WorkloadModel: call probability out of range");
            }
            require(item.mean_repeats >= 1.0,
                    "WorkloadModel: mean_repeats must be >= 1");
        }
    }
    require(!phases.empty(), "WorkloadModel: at least one phase required");
    for (const Phase &phase : phases) {
        require(!phase.roots.empty(),
                "WorkloadModel: phase '" + phase.name + "' has no roots");
        for (ProcId root : phase.roots) {
            require(root < program.procCount(),
                    "WorkloadModel: invalid root in phase '" + phase.name +
                        "'");
        }
        require(phase.mean_iterations >= 1.0,
                "WorkloadModel: phase iterations must be >= 1");
    }
    for (ProcId init : init_procs) {
        require(init < program.procCount(),
                "WorkloadModel: invalid init procedure");
    }
}

} // namespace topo
