#include "topo/workload/paper_suite.hh"

#include <cmath>

#include "topo/util/error.hh"
#include "topo/workload/synthetic_program.hh"

namespace topo
{

namespace
{

/** Static shape and input parameters of one Table 1 row. */
struct CaseSpec
{
    const char *name;
    std::uint32_t proc_count;
    std::uint64_t total_kb;
    std::uint32_t popular_count;
    std::uint64_t popular_kb;
    std::uint32_t phase_count;
    std::uint32_t ranks;
    double shared_frac;
    /** Relative trace length (paper lengths range 17M-146M blocks). */
    double length_factor;
    std::uint64_t seed;
    const char *train_name;
    const char *test_name;
    /** Train/test phase emphasis; empty means mild default variation. */
    std::vector<double> train_emphasis;
    std::vector<double> test_emphasis;
};

const std::vector<CaseSpec> &
caseSpecs()
{
    // Sizes/counts follow Table 1; phase structure is chosen to give
    // each program a plausible working-set character (gcc: many phases
    // over a large popular set; perl: small hot loop set; etc.).
    static const std::vector<CaseSpec> specs = {
        {"gcc", 2005, 2277, 136, 351, 5, 5, 0.30, 0.8, 101,
         "recog.i", "global.i",
         {1.3, 1.0, 0.8, 1.1, 0.9}, {0.9, 1.1, 1.2, 0.7, 1.1}},
        {"go", 3221, 590, 112, 134, 4, 4, 0.25, 0.5, 202,
         "11x11-level4", "9x9-level6",
         {1.2, 0.9, 1.0, 1.0}, {0.8, 1.2, 1.1, 0.9}},
        {"ghostscript", 372, 1817, 216, 104, 5, 4, 0.35, 0.9, 303,
         "14-page-presentation", "3-page-paper",
         {1.0, 1.2, 0.9, 1.0, 1.0}, {1.1, 0.8, 1.2, 0.9, 1.0}},
        // m88ksim: the training input exercises almost only the first
        // two phases and the testing input almost only the last two,
        // reproducing the paper's "dcrand is a poor training set for
        // dhry" observation.
        {"m88ksim", 460, 549, 31, 21, 4, 3, 0.40, 1.2, 404,
         "dcrand", "dhry",
         {1.0, 1.0, 0.04, 0.04}, {0.04, 0.04, 1.0, 1.0}},
        {"perl", 271, 664, 36, 83, 3, 4, 0.30, 1.6, 505,
         "scrabbl.pl", "primes.pl",
         {1.2, 1.0, 0.8}, {0.7, 1.2, 1.1}},
        {"vortex", 923, 1073, 156, 117, 4, 5, 0.30, 1.0, 606,
         "persons.250", "persons.1k",
         {1.0, 1.1, 0.9, 1.0}, {1.1, 0.9, 1.0, 1.1}},
    };
    return specs;
}

BenchmarkCase
buildCase(const CaseSpec &spec, double trace_scale)
{
    require(trace_scale > 0.0, "paperSuite: trace scale must be positive");
    SyntheticSpec synth;
    synth.name = spec.name;
    synth.proc_count = spec.proc_count;
    synth.total_bytes = spec.total_kb * 1024;
    synth.popular_count = spec.popular_count;
    synth.popular_bytes = spec.popular_kb * 1024;
    synth.phase_count = spec.phase_count;
    synth.ranks = spec.ranks;
    synth.shared_frac = spec.shared_frac;
    synth.seed = spec.seed;

    BenchmarkCase bench;
    bench.name = spec.name;
    bench.model = buildSyntheticWorkload(synth);

    const double base_runs = 1.0e6 * spec.length_factor * trace_scale;
    const auto target =
        static_cast<std::uint64_t>(std::llround(std::max(1.0, base_runs)));

    bench.train.name = spec.train_name;
    bench.train.seed = spec.seed * 7919 + 1;
    bench.train.phase_emphasis = spec.train_emphasis;
    bench.train.call_bias = 1.0;
    bench.train.target_runs = target;

    bench.test.name = spec.test_name;
    bench.test.seed = spec.seed * 104729 + 2;
    bench.test.phase_emphasis = spec.test_emphasis;
    bench.test.call_bias = 0.97;
    bench.test.target_runs = target;

    return bench;
}

} // namespace

std::vector<BenchmarkCase>
paperSuite(double trace_scale)
{
    std::vector<BenchmarkCase> cases;
    cases.reserve(caseSpecs().size());
    for (const CaseSpec &spec : caseSpecs())
        cases.push_back(buildCase(spec, trace_scale));
    return cases;
}

BenchmarkCase
paperBenchmark(const std::string &name, double trace_scale)
{
    for (const CaseSpec &spec : caseSpecs()) {
        if (name == spec.name)
            return buildCase(spec, trace_scale);
    }
    fail("paperBenchmark: unknown benchmark '" + name + "'");
}

const std::vector<std::string> &
paperBenchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const CaseSpec &spec : caseSpecs())
            out.push_back(spec.name);
        return out;
    }();
    return names;
}

} // namespace topo
