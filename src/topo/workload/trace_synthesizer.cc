#include "topo/workload/trace_synthesizer.hh"

#include <algorithm>
#include <cmath>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{

namespace
{

/** Recursion guard; generated models are DAGs and never get here. */
constexpr int kMaxCallDepth = 64;

class Walker
{
  public:
    Walker(const WorkloadModel &model, const WorkloadInput &input)
        : model_(model),
          input_(input),
          rng_(input.seed),
          trace_(model.program.procCount())
    {
    }

    Trace
    run()
    {
        trace_.reserve(input_.target_runs + 1024);
        for (ProcId init : model_.init_procs) {
            if (done())
                break;
            executeProc(init, 0);
        }
        // Epochs: run the phase list until the trace is long enough.
        while (!done()) {
            for (std::size_t pi = 0; pi < model_.phases.size(); ++pi) {
                if (done())
                    break;
                executePhase(pi);
            }
        }
        return std::move(trace_);
    }

  private:
    bool done() const { return trace_.size() >= input_.target_runs; }

    double
    emphasis(std::size_t phase_index) const
    {
        if (phase_index < input_.phase_emphasis.size())
            return input_.phase_emphasis[phase_index];
        return 1.0;
    }

    /** Draw an iteration count around a mean with ~25% jitter. */
    std::uint64_t
    drawIterations(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double jittered = mean * rng_.nextLogNormal(0.0, 0.25);
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(jittered)));
    }

    void
    executePhase(std::size_t phase_index)
    {
        const Phase &phase = model_.phases[phase_index];
        const double scale = emphasis(phase_index);
        if (scale <= 0.0)
            return;
        const std::uint64_t iters =
            drawIterations(phase.mean_iterations * scale);
        for (std::uint64_t i = 0; i < iters && !done(); ++i) {
            for (ProcId root : phase.roots) {
                if (done())
                    break;
                executeProc(root, 0);
            }
        }
    }

    void
    executeProc(ProcId proc, int depth)
    {
        if (depth > kMaxCallDepth || done())
            return;
        const ProcBody &body = model_.bodies[proc];
        for (const BodyItem &item : body.items) {
            const std::uint64_t repeats = drawIterations(item.mean_repeats);
            for (std::uint64_t r = 0; r < repeats; ++r) {
                if (done())
                    return;
                trace_.append(proc, item.run_begin, item.run_length);
                if (item.callee != kInvalidProc) {
                    const double p =
                        std::min(1.0, item.call_prob * input_.call_bias);
                    if (rng_.nextBool(p))
                        executeProc(item.callee, depth + 1);
                }
            }
        }
    }

    const WorkloadModel &model_;
    const WorkloadInput &input_;
    Rng rng_;
    Trace trace_;
};

} // namespace

Trace
synthesizeTrace(const WorkloadModel &model, const WorkloadInput &input)
{
    model.validate();
    require(input.target_runs > 0, "synthesizeTrace: zero target runs");
    PhaseTimer timer("synthesis");
    Walker walker(model, input);
    Trace trace = walker.run();

    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("synth.traces").add();
    metrics.counter("synth.runs").add(trace.size());
    if (logEnabled(LogLevel::kDebug)) {
        logDebug("synth", "trace synthesized",
                 {{"program", model.program.name()},
                  {"input", input.name},
                  {"runs", trace.size()},
                  {"ms", timer.elapsedMs()}});
    }
    return trace;
}

} // namespace topo
