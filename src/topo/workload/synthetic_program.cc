#include "topo/workload/synthetic_program.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{

namespace
{

/**
 * Draw @p count log-normal sizes and rescale them to sum to @p total,
 * respecting a minimum per-procedure size.
 */
std::vector<std::uint32_t>
drawSizes(Rng &rng, std::uint32_t count, std::uint64_t total,
          std::uint32_t min_size, double sigma)
{
    require(count > 0, "drawSizes: zero count");
    require(total >= static_cast<std::uint64_t>(count) * min_size,
            "drawSizes: total too small for the minimum size");
    std::vector<double> raw(count);
    double raw_sum = 0.0;
    for (double &r : raw) {
        r = rng.nextLogNormal(0.0, sigma);
        raw_sum += r;
    }
    std::vector<std::uint32_t> sizes(count);
    std::uint64_t assigned = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        const double share = raw[i] / raw_sum * static_cast<double>(total);
        std::uint32_t size = static_cast<std::uint32_t>(
            std::max<double>(min_size, std::llround(share)));
        // Round to 4-byte instruction granularity.
        size = (size + 3u) & ~3u;
        sizes[i] = size;
        assigned += size;
    }
    // Nudge the largest entries so the total is close to the target
    // (exactness is unnecessary; Table 1 reports the achieved value).
    if (assigned > total) {
        std::uint64_t excess = assigned - total;
        for (std::uint32_t i = 0; i < count && excess > 0; ++i) {
            std::uint32_t &size = sizes[i];
            const std::uint32_t slack = size > min_size ? size - min_size : 0;
            const std::uint32_t cut = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(slack & ~3u, excess & ~3ull));
            size -= cut;
            excess -= cut;
        }
    }
    return sizes;
}

/** Split [0, size) into @p parts contiguous segments of >= 8 bytes. */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
splitSegments(Rng &rng, std::uint32_t size, std::uint32_t parts)
{
    parts = std::max<std::uint32_t>(1, std::min(parts, size / 8));
    std::vector<std::uint32_t> cuts;
    cuts.push_back(0);
    cuts.push_back(size);
    for (std::uint32_t i = 1; i < parts; ++i) {
        cuts.push_back(8 + static_cast<std::uint32_t>(
                               rng.nextBelow(std::max<std::uint32_t>(
                                   1, size - 8))));
    }
    std::sort(cuts.begin(), cuts.end());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> segments;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        if (cuts[i + 1] > cuts[i])
            segments.emplace_back(cuts[i], cuts[i + 1] - cuts[i]);
    }
    if (segments.empty())
        segments.emplace_back(0, size);
    return segments;
}

} // namespace

WorkloadModel
buildSyntheticWorkload(const SyntheticSpec &spec)
{
    require(spec.proc_count >= 2, "SyntheticSpec: need at least 2 procs");
    require(spec.popular_count >= 2 &&
                spec.popular_count <= spec.proc_count,
            "SyntheticSpec: popular_count out of range");
    require(spec.popular_bytes < spec.total_bytes,
            "SyntheticSpec: popular bytes must be below total");
    require(spec.phase_count >= 1, "SyntheticSpec: need at least one phase");
    require(spec.ranks >= 2, "SyntheticSpec: need at least two ranks");
    require(spec.loop_mean >= 1.0, "SyntheticSpec: loop_mean must be >= 1");
    require(spec.cold_run_cap >= 32,
            "SyntheticSpec: cold_run_cap must be >= 32 bytes");

    Rng rng(spec.seed);
    WorkloadModel model;
    model.program = Program(spec.name);

    const std::uint32_t unpopular_count =
        spec.proc_count - spec.popular_count;
    const std::uint64_t unpopular_bytes =
        spec.total_bytes - spec.popular_bytes;

    std::vector<std::uint32_t> hot_sizes =
        drawSizes(rng, spec.popular_count, spec.popular_bytes, 96,
                  spec.size_sigma);
    std::vector<std::uint32_t> cold_sizes;
    if (unpopular_count > 0) {
        cold_sizes = drawSizes(rng, unpopular_count, unpopular_bytes, 32,
                               spec.size_sigma);
    }

    // Interleave hot and cold procedures in "source order" so the
    // default layout is arbitrary with respect to hotness (as in real
    // programs, where source order carries no cache-awareness).
    struct Slot
    {
        bool hot;
        std::uint32_t size;
    };
    std::vector<Slot> slots;
    slots.reserve(spec.proc_count);
    for (std::uint32_t s : hot_sizes)
        slots.push_back(Slot{true, s});
    for (std::uint32_t s : cold_sizes)
        slots.push_back(Slot{false, s});
    rng.shuffle(slots);

    std::vector<ProcId> hot_procs;
    std::vector<ProcId> cold_procs;
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        const Slot &slot = slots[i];
        const std::string prefix = slot.hot ? "hot_" : "cold_";
        const ProcId id = model.program.addProcedure(
            prefix + std::to_string(i), slot.size);
        (slot.hot ? hot_procs : cold_procs).push_back(id);
    }

    // --- Rank assignment over hot procedures: rank 0 procedures are
    // phase roots; calls always go to strictly higher ranks (DAG).
    const std::uint32_t ranks = spec.ranks;
    std::vector<std::uint32_t> rank_of(model.program.procCount(), 0);
    std::vector<std::vector<ProcId>> by_rank(ranks);
    rng.shuffle(hot_procs);
    for (std::uint32_t i = 0; i < hot_procs.size(); ++i) {
        const std::uint32_t r = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(i) * ranks / hot_procs.size());
        rank_of[hot_procs[i]] = r;
        by_rank[r].push_back(hot_procs[i]);
    }
    // Every rank needs at least one member; steal from the largest.
    for (std::uint32_t r = 0; r < ranks; ++r) {
        if (!by_rank[r].empty())
            continue;
        auto largest = std::max_element(
            by_rank.begin(), by_rank.end(),
            [](const auto &a, const auto &b) { return a.size() < b.size(); });
        require(largest->size() > 1, "buildSyntheticWorkload: too few hot "
                                     "procedures for the rank count");
        by_rank[r].push_back(largest->back());
        rank_of[largest->back()] = r;
        largest->pop_back();
    }

    // --- Phase homes. Leaf-rank procedures may be shared utilities.
    std::vector<std::uint32_t> home_phase(model.program.procCount(), 0);
    std::vector<bool> shared(model.program.procCount(), false);
    for (ProcId p : hot_procs) {
        home_phase[p] =
            static_cast<std::uint32_t>(rng.nextBelow(spec.phase_count));
        if (rank_of[p] == ranks - 1 && rng.nextBool(spec.shared_frac))
            shared[p] = true;
    }

    // --- Call DAG over hot procedures.
    std::vector<std::vector<ProcId>> callees_of(model.program.procCount());
    std::vector<bool> has_caller(model.program.procCount(), false);
    auto pick_callee = [&](ProcId caller) -> ProcId {
        const std::uint32_t r = rank_of[caller];
        // Collect candidates: higher-rank procs in the same phase, or
        // shared utilities anywhere.
        std::vector<ProcId> candidates;
        for (std::uint32_t rr = r + 1; rr < ranks; ++rr) {
            for (ProcId q : by_rank[rr]) {
                if (shared[q] || home_phase[q] == home_phase[caller])
                    candidates.push_back(q);
            }
        }
        if (candidates.empty()) {
            for (std::uint32_t rr = r + 1; rr < ranks; ++rr)
                for (ProcId q : by_rank[rr])
                    candidates.push_back(q);
        }
        if (candidates.empty())
            return kInvalidProc;
        return candidates[rng.nextBelow(candidates.size())];
    };

    for (ProcId p : hot_procs) {
        if (rank_of[p] == ranks - 1)
            continue; // leaves call no hot procedures
        const std::uint32_t fanout =
            1 + static_cast<std::uint32_t>(rng.nextBelow(3));
        for (std::uint32_t c = 0; c < fanout; ++c) {
            const ProcId callee = pick_callee(p);
            if (callee == kInvalidProc)
                break;
            callees_of[p].push_back(callee);
            has_caller[callee] = true;
        }
    }
    // Reachability: any hot non-root without a caller gets attached to
    // a random procedure of a strictly lower rank (keeps the DAG).
    for (ProcId p : hot_procs) {
        if (rank_of[p] == 0 || has_caller[p])
            continue;
        const std::uint32_t r = rank_of[p];
        const std::uint32_t lower =
            static_cast<std::uint32_t>(rng.nextBelow(r));
        const auto &pool = by_rank[lower];
        const ProcId caller = pool[rng.nextBelow(pool.size())];
        callees_of[caller].push_back(p);
        has_caller[p] = true;
    }

    // --- Bodies.
    model.bodies.resize(model.program.procCount());
    for (ProcId p : hot_procs) {
        const std::uint32_t size = model.program.proc(p).size_bytes;
        const auto &callees = callees_of[p];
        // One segment per callee plus a prologue/epilogue; very large
        // procedures get extra plain segments so execution walks all
        // of their chunks.
        const std::uint32_t extra = size / 2048;
        const std::uint32_t parts = static_cast<std::uint32_t>(
            callees.size() + 2 + std::min<std::uint32_t>(extra, 8));
        auto segments = splitSegments(rng, size, parts);
        ProcBody &body = model.bodies[p];
        const bool is_leaf = rank_of[p] == ranks - 1;
        const bool calls_leaves = rank_of[p] + 2 == ranks;
        std::size_t seg_idx = 0;
        for (ProcId callee : callees) {
            BodyItem item;
            auto [begin, length] = segments[seg_idx % segments.size()];
            ++seg_idx;
            item.run_begin = begin;
            item.run_length = length;
            item.callee = callee;
            item.call_prob = 0.35 + 0.65 * rng.nextDouble();
            // Loops around call sites live mostly just above the
            // leaves (the hot loop nests); deeper repetition would
            // multiply through the call DAG and blow up the trace.
            if (calls_leaves && rng.nextBool(0.5))
                item.mean_repeats = 2.0 + rng.nextBelow(4);
            else if (rng.nextBool(0.15))
                item.mean_repeats = 2.0;
            body.items.push_back(item);
        }
        // Occasional cold call site.
        if (!cold_procs.empty() && rng.nextBool(0.5)) {
            BodyItem item;
            auto [begin, length] = segments[seg_idx % segments.size()];
            ++seg_idx;
            item.run_begin = begin;
            item.run_length = length;
            item.callee = cold_procs[rng.nextBelow(cold_procs.size())];
            item.call_prob = spec.cold_call_prob;
            body.items.push_back(item);
        }
        // Remaining segments as plain runs; leaves loop tightly over
        // them — this is where the bulk of all line reuse (and thus a
        // realistic hit rate) comes from. Some interior segments are
        // cold paths (error handling, rare branches) that never
        // execute at all; they bloat the procedure's footprint exactly
        // the way procedure splitting is meant to undo.
        bool emitted_plain = false;
        bool in_dead_run = false;
        for (; seg_idx < segments.size(); ++seg_idx) {
            if (in_dead_run) {
                if (rng.nextBool(0.6))
                    continue; // the dead region keeps going
                in_dead_run = false;
            }
            if (emitted_plain && rng.nextBool(0.25)) {
                in_dead_run = true; // start of a dead region
                continue;
            }
            BodyItem item;
            item.run_begin = segments[seg_idx].first;
            item.run_length = segments[seg_idx].second;
            if (is_leaf) {
                item.mean_repeats = std::max(
                    1.0, rng.nextLogNormal(std::log(spec.loop_mean),
                                           0.5));
            } else if (rng.nextBool(0.2)) {
                item.mean_repeats = 2.0 + rng.nextBelow(3);
            }
            body.items.push_back(item);
            emitted_plain = true;
        }
        if (body.items.empty()) {
            // Degenerate split (all segments consumed by call sites):
            // fall back to a whole-body run.
            BodyItem item;
            item.run_begin = 0;
            item.run_length = size;
            body.items.push_back(item);
        }
    }
    for (ProcId p : cold_procs) {
        const std::uint32_t size = model.program.proc(p).size_bytes;
        BodyItem item;
        item.run_begin = 0;
        item.run_length = std::min(size, spec.cold_run_cap);
        model.bodies[p].items.push_back(item);
    }

    // --- Phases: rank-0 procedures are the roots of their home phase.
    model.phases.resize(spec.phase_count);
    for (std::uint32_t ph = 0; ph < spec.phase_count; ++ph) {
        model.phases[ph].name = "phase" + std::to_string(ph);
        model.phases[ph].mean_iterations =
            std::max(1.0, spec.phase_iterations *
                              (0.6 + 0.8 * rng.nextDouble()));
    }
    for (ProcId p : by_rank[0])
        model.phases[home_phase[p]].roots.push_back(p);
    // A phase with no root borrows a random rank-0 procedure.
    for (Phase &phase : model.phases) {
        if (phase.roots.empty()) {
            phase.roots.push_back(
                by_rank[0][rng.nextBelow(by_rank[0].size())]);
        }
    }

    // --- Init code: a sample of cold procedures touched once.
    for (ProcId p : cold_procs) {
        if (rng.nextBool(0.15))
            model.init_procs.push_back(p);
    }

    model.validate();
    return model;
}

} // namespace topo
