/**
 * @file
 * The six benchmark models of the paper's Table 1.
 *
 * Each case couples a synthetic workload model whose static shape
 * follows Table 1 (total size, procedure count, popular subset) with a
 * *training* input that drives placement and a *testing* input that
 * measures it, mirroring Section 5.2's methodology. The m88ksim case
 * deliberately makes the training input a poor predictor of the
 * testing input (dcrand vs dhry in the paper).
 */

#ifndef TOPO_WORKLOAD_PAPER_SUITE_HH
#define TOPO_WORKLOAD_PAPER_SUITE_HH

#include <string>
#include <vector>

#include "topo/workload/skeleton.hh"

namespace topo
{

/** One benchmark of the evaluation suite. */
struct BenchmarkCase
{
    std::string name;
    WorkloadModel model;
    WorkloadInput train;
    WorkloadInput test;
};

/**
 * Build all six benchmark models.
 *
 * @param trace_scale Multiplier on the default trace lengths (the
 *                    TOPO_TRACE_SCALE knob); 1.0 gives roughly one
 *                    million runs per input.
 */
std::vector<BenchmarkCase> paperSuite(double trace_scale = 1.0);

/** Build a single named benchmark; throws TopoError for unknown names. */
BenchmarkCase paperBenchmark(const std::string &name,
                             double trace_scale = 1.0);

/** Names of the six benchmarks in Table 1 order. */
const std::vector<std::string> &paperBenchmarkNames();

} // namespace topo

#endif // TOPO_WORKLOAD_PAPER_SUITE_HH
