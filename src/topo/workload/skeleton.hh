/**
 * @file
 * Workload model: a program skeleton that can be "executed" to emit
 * traces.
 *
 * The paper profiles real SPECint95 binaries; this repository replaces
 * them with a structural model (see DESIGN.md, Substitutions). A
 * WorkloadModel couples a Program with per-procedure *bodies* — run
 * segments interleaved with probabilistic call sites — and a list of
 * *phases*, each repeatedly executing a set of root procedures. Walking
 * the model with an input (seed, phase emphasis, call bias) yields a
 * trace with the temporal structure the placement algorithms care
 * about: caller/callee interleaving, sibling alternation at fine and
 * coarse grain, and multi-phase reuse distances.
 */

#ifndef TOPO_WORKLOAD_SKELETON_HH
#define TOPO_WORKLOAD_SKELETON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/program/program.hh"

namespace topo
{

/**
 * One step of a procedure body: a straight-line run of code, then
 * (optionally) a call. The pair may repeat, modelling a hot inner loop
 * around the call site.
 */
struct BodyItem
{
    /** First byte of the run, relative to the procedure. */
    std::uint32_t run_begin = 0;
    /** Length of the run in bytes (> 0). */
    std::uint32_t run_length = 0;
    /** Callee procedure, or kInvalidProc for a plain run. */
    ProcId callee = kInvalidProc;
    /** Probability the call is taken on each iteration. */
    double call_prob = 1.0;
    /** Mean number of times this item repeats per body execution. */
    double mean_repeats = 1.0;
};

/** A procedure body: ordered body items covering parts of the code. */
struct ProcBody
{
    std::vector<BodyItem> items;
};

/**
 * A phase: a set of root procedures executed round-robin for a number
 * of iterations each time the phase is scheduled.
 */
struct Phase
{
    std::string name;
    std::vector<ProcId> roots;
    /** Mean iterations of the root set per scheduling of the phase. */
    double mean_iterations = 100.0;
};

/**
 * A complete executable workload model.
 */
struct WorkloadModel
{
    Program program{"workload"};
    /** One body per procedure (index = ProcId). */
    std::vector<ProcBody> bodies;
    /** Phases executed in order, repeatedly (epochs). */
    std::vector<Phase> phases;
    /**
     * Procedures touched once at startup (cold/init code), emitted at
     * the head of every trace.
     */
    std::vector<ProcId> init_procs;

    /** Validate internal consistency; throws TopoError on violation. */
    void validate() const;
};

/**
 * Input parameters of one execution of a workload model — the analog
 * of a benchmark's command-line input in the paper's methodology.
 */
struct WorkloadInput
{
    std::string name = "input";
    /** Seed for every stochastic choice of the walk. */
    std::uint64_t seed = 1;
    /**
     * Per-phase multiplier on mean_iterations; empty means all ones.
     * Distinct emphases make train/test inputs exercise the program
     * differently (e.g. the m88ksim model's poor-training setup).
     */
    std::vector<double> phase_emphasis;
    /** Global multiplier on call probabilities. */
    double call_bias = 1.0;
    /** Stop once the trace holds at least this many runs. */
    std::uint64_t target_runs = 1000000;
};

} // namespace topo

#endif // TOPO_WORKLOAD_SKELETON_HH
