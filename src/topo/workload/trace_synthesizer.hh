/**
 * @file
 * Trace synthesis: execute a WorkloadModel and record the run trace.
 */

#ifndef TOPO_WORKLOAD_TRACE_SYNTHESIZER_HH
#define TOPO_WORKLOAD_TRACE_SYNTHESIZER_HH

#include "topo/trace/trace.hh"
#include "topo/workload/skeleton.hh"

namespace topo
{

/**
 * Walk a workload model under a given input and emit the trace.
 *
 * The walk is fully deterministic in (model, input.seed, input fields).
 * Phases run in order; the whole phase list repeats (epochs) until the
 * trace reaches input.target_runs. Call sites deeper than an internal
 * recursion guard (64 frames) are skipped; generated models are DAGs
 * so the guard never triggers for them.
 *
 * @param model Validated workload model.
 * @param input Execution parameters.
 */
Trace synthesizeTrace(const WorkloadModel &model, const WorkloadInput &input);

} // namespace topo

#endif // TOPO_WORKLOAD_TRACE_SYNTHESIZER_HH
