#include "topo/workload/microsuite.hh"

#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{

namespace
{

MicroCase
thrashPair()
{
    MicroCase mc;
    mc.name = "thrash_pair";
    mc.lesson = "two alternating procedures fit the cache together; "
                "any overlap is pure conflict loss";
    mc.program = Program(mc.name);
    const ProcId f = mc.program.addProcedure("f", 3072);
    // Dead weight between the pair in source order, sized so the
    // default layout maps g exactly on top of f (8KB cache).
    mc.program.addProcedure("dead", 8 * 1024 - 3072);
    const ProcId g = mc.program.addProcedure("g", 3072);
    mc.cache = CacheConfig{8 * 1024, 32, 1};
    mc.trace = Trace(mc.program.procCount());
    for (int i = 0; i < 3000; ++i) {
        mc.trace.appendWhole(f, 3072);
        mc.trace.appendWhole(g, 3072);
    }
    return mc;
}

MicroCase
siblingFanout()
{
    MicroCase mc;
    mc.name = "sibling_fanout";
    mc.lesson = "siblings never call each other, so the WCG carries no "
                "edge between them and cannot tell which pairs "
                "interleave; the TRG sees that neighbouring cases "
                "alternate while distant ones may share lines";
    mc.program = Program(mc.name);
    const ProcId dispatch = mc.program.addProcedure("dispatch", 1024);
    std::vector<ProcId> siblings;
    for (int i = 0; i < 6; ++i) {
        siblings.push_back(mc.program.addProcedure(
            "case_" + std::to_string(i), 1024));
    }
    // 7 KB of code into a 4 KB cache: someone must overlap someone.
    mc.cache = CacheConfig{4 * 1024, 32, 1};
    mc.trace = Trace(mc.program.procCount());
    // The dispatch index performs a local random walk: temporally
    // close references hit *neighbouring* cases, so (i, i+-1) pairs
    // interleave constantly while distant pairs are cheap to overlap.
    Rng rng(9);
    std::size_t index = 0;
    for (int i = 0; i < 8000; ++i) {
        mc.trace.appendWhole(dispatch, 1024);
        mc.trace.appendWhole(siblings[index], 1024);
        if (rng.nextBool(0.1)) {
            index = rng.nextBelow(siblings.size());
        } else if (rng.nextBool(0.5)) {
            index = (index + 1) % siblings.size();
        } else {
            index = (index + siblings.size() - 1) % siblings.size();
        }
    }
    return mc;
}

MicroCase
phaseFlip()
{
    MicroCase mc;
    mc.name = "phase_flip";
    mc.lesson = "disjoint phase working sets may overlap each other in "
                "the cache at zero cost, but not within a phase (the "
                "Figure 1 trace-#2 structure at scale)";
    mc.program = Program(mc.name);
    std::vector<ProcId> phase_a, phase_b;
    // Interleaved source order: the default layout wraps a2 onto a0
    // and b2 onto b0 — overlap *within* a phase, the worst kind.
    for (int i = 0; i < 3; ++i) {
        phase_a.push_back(mc.program.addProcedure(
            "a" + std::to_string(i), 2048));
        phase_b.push_back(mc.program.addProcedure(
            "b" + std::to_string(i), 2048));
    }
    mc.cache = CacheConfig{8 * 1024, 32, 1};
    mc.trace = Trace(mc.program.procCount());
    for (int epoch = 0; epoch < 6; ++epoch) {
        const auto &procs = (epoch % 2 == 0) ? phase_a : phase_b;
        for (int it = 0; it < 400; ++it) {
            for (ProcId p : procs)
                mc.trace.appendWhole(p, 2048);
        }
    }
    return mc;
}

MicroCase
giantProc()
{
    MicroCase mc;
    mc.name = "giant_proc";
    mc.lesson = "a procedure larger than the cache: only chunk-level "
                "information can find the alignment that keeps its hot "
                "chunks clear of the helper";
    mc.program = Program(mc.name);
    const ProcId giant = mc.program.addProcedure("giant", 12 * 1024);
    const ProcId helper = mc.program.addProcedure("helper", 512);
    mc.cache = CacheConfig{8 * 1024, 32, 1};
    mc.trace = Trace(mc.program.procCount());
    // Only two hot windows of the giant execute, interleaved with the
    // helper; the rest of the giant runs once (cold). A 12KB giant
    // covers *every* cache line, so the helper must overlap it
    // somewhere; the second hot window sits exactly where both the
    // default layout and a naive adjacent placement drop the helper
    // (cache-relative lines 128..143), so only chunk-level knowledge
    // dodges it.
    mc.trace.appendWhole(giant, 12 * 1024);
    for (int i = 0; i < 4000; ++i) {
        mc.trace.append(giant, 0, 512);        // hot head (lines 0-15)
        mc.trace.append(helper, 0, 512);
        mc.trace.append(giant, 4 * 1024, 512); // hot window (128-143)
    }
    return mc;
}

MicroCase
coldSandwich()
{
    MicroCase mc;
    mc.name = "cold_sandwich";
    mc.lesson = "dead code between two hot procedures pushes them onto "
                "the same lines in the default layout; placement just "
                "has to move one of them";
    mc.program = Program(mc.name);
    const ProcId parse = mc.program.addProcedure("parse", 1800);
    mc.program.addProcedure("legacy", 2240);
    const ProcId eval = mc.program.addProcedure("eval", 1600);
    mc.cache = CacheConfig{4 * 1024, 32, 1};
    mc.trace = Trace(mc.program.procCount());
    for (int i = 0; i < 4000; ++i) {
        mc.trace.appendWhole(parse, 1800);
        mc.trace.appendWhole(eval, 1600);
    }
    return mc;
}

} // namespace

std::vector<MicroCase>
microsuite()
{
    std::vector<MicroCase> cases;
    cases.push_back(thrashPair());
    cases.push_back(siblingFanout());
    cases.push_back(phaseFlip());
    cases.push_back(giantProc());
    cases.push_back(coldSandwich());
    return cases;
}

MicroCase
microCase(const std::string &name)
{
    for (MicroCase &mc : microsuite()) {
        if (mc.name == name)
            return std::move(mc);
    }
    fail("microCase: unknown case '" + name + "'");
}

} // namespace topo
