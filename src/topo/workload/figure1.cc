#include "topo/workload/figure1.hh"

namespace topo
{

namespace
{

/**
 * Emit one loop iteration: M runs, calls the chosen leaf (X when cond
 * is true, Y otherwise), M resumes; every fourth iteration M also
 * calls Z before finishing. Z's lower frequency is what makes the two
 * traces demand different layouts: under alternation (trace #1) the
 * X/Y interleaving dominates and they must not share a line, while
 * under phased execution (trace #2) X and Y never interleave and Z —
 * the only block alive in both phases — deserves its own line.
 */
void
emitIteration(Trace &trace, const Figure1Example &ex, ProcId leaf,
              bool call_z, std::uint32_t size)
{
    trace.append(ex.m, 0, size);
    trace.append(leaf, 0, size);
    trace.append(ex.m, 0, size);
    if (call_z) {
        trace.append(ex.z, 0, size);
        trace.append(ex.m, 0, size);
    }
}

} // namespace

Trace
Figure1Example::trace1() const
{
    const std::uint32_t size = program.proc(m).size_bytes;
    Trace trace(program.procCount());
    for (int i = 0; i < kIterations; ++i) {
        emitIteration(trace, *this, (i % 2 == 0) ? x : y, i % 4 == 3,
                      size);
    }
    return trace;
}

Trace
Figure1Example::trace2() const
{
    const std::uint32_t size = program.proc(m).size_bytes;
    Trace trace(program.procCount());
    for (int i = 0; i < kIterations; ++i) {
        emitIteration(trace, *this, (i < kIterations / 2) ? x : y,
                      i % 4 == 3, size);
    }
    return trace;
}

Figure1Example
makeFigure1Example(std::uint32_t line_bytes)
{
    Figure1Example ex;
    ex.m = ex.program.addProcedure("M", line_bytes);
    ex.x = ex.program.addProcedure("X", line_bytes);
    ex.y = ex.program.addProcedure("Y", line_bytes);
    ex.z = ex.program.addProcedure("Z", line_bytes);
    ex.cache = CacheConfig{3 * line_bytes, line_bytes, 1};
    return ex;
}

} // namespace topo
