/**
 * @file
 * Profile-data perturbation (Section 5.1).
 *
 * To simulate the effect of many slightly different inputs, each edge
 * weight w of a relationship graph is replaced by w * exp(s * X) with
 * X ~ N(0,1). Multiplicative noise keeps weights positive and makes
 * reasonable values of s independent of the weight scale. The paper
 * uses s = 0.1 for its 40-run distributions.
 */

#ifndef TOPO_PROFILE_PERTURB_HH
#define TOPO_PROFILE_PERTURB_HH

#include "topo/profile/weighted_graph.hh"
#include "topo/util/rng.hh"

namespace topo
{

/** The paper's perturbation scale for the Figure 5 experiments. */
inline constexpr double kPaperPerturbScale = 0.1;

/**
 * Return a copy of @p graph with every edge weight multiplied by
 * exp(scale * N(0,1)).
 *
 * @param graph Relationship graph (WCG or TRG).
 * @param scale The s parameter; 0 returns an exact copy.
 * @param rng   Random stream (consumed).
 */
WeightedGraph perturb(const WeightedGraph &graph, double scale, Rng &rng);

} // namespace topo

#endif // TOPO_PROFILE_PERTURB_HH
