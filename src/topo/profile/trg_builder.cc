#include "topo/profile/trg_builder.hh"

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/profile/trg_accumulator.hh"
#include "topo/util/error.hh"

namespace topo
{

TrgBuildResult
buildTrgs(const Program &program, const ChunkMap &chunks, const Trace &trace,
          const TrgBuildOptions &options)
{
    require(trace.procCount() == program.procCount(),
            "buildTrgs: program/trace mismatch");
    PhaseTimer timer("trg_build");
    TrgAccumulator accumulator(program, chunks, options);
    accumulator.onTrace(trace);
    TrgBuildResult result = accumulator.take();

    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.counter("trg.builds").add();
    metrics.counter("trg.events").add(trace.size());
    metrics.counter("trg.proc_steps").add(result.proc_steps);
    metrics.counter("trg.select_edges").add(result.select.edgeCount());
    metrics.counter("trg.place_edges").add(result.place.edgeCount());
    metrics.counter("trg.proc_evictions").add(result.proc_evictions);
    metrics.counter("trg.chunk_evictions").add(result.chunk_evictions);
    metrics.gauge("trg.avg_queue_procs").set(result.avg_queue_procs);

    if (logEnabled(LogLevel::kDebug)) {
        logDebug("trg", "built TRGs",
                 {{"events", trace.size()},
                  {"proc_steps", result.proc_steps},
                  {"select_edges", result.select.edgeCount()},
                  {"place_edges", result.place.edgeCount()},
                  {"avg_queue_procs", result.avg_queue_procs},
                  {"q_budget", options.byte_budget},
                  {"ms", timer.elapsedMs()}});
    }
    return result;
}

} // namespace topo
