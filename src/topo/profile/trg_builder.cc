#include "topo/profile/trg_builder.hh"

#include "topo/profile/trg_accumulator.hh"
#include "topo/util/error.hh"

namespace topo
{

TrgBuildResult
buildTrgs(const Program &program, const ChunkMap &chunks, const Trace &trace,
          const TrgBuildOptions &options)
{
    require(trace.procCount() == program.procCount(),
            "buildTrgs: program/trace mismatch");
    TrgAccumulator accumulator(program, chunks, options);
    accumulator.onTrace(trace);
    return accumulator.take();
}

} // namespace topo
