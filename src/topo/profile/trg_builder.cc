#include "topo/profile/trg_builder.hh"

#include <algorithm>
#include <memory>

#include "topo/exec/exec.hh"
#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/profile/trg_accumulator.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Shards below this many events are not worth the plan replay. */
constexpr std::size_t kMinEventsPerShard = 8192;

std::vector<std::uint32_t>
procSizesOf(const Program &program)
{
    std::vector<std::uint32_t> sizes(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i)
        sizes[i] = program.proc(static_cast<ProcId>(i)).size_bytes;
    return sizes;
}

std::vector<std::uint32_t>
chunkSizesOf(const ChunkMap &chunks)
{
    std::vector<std::uint32_t> sizes(chunks.chunkCount());
    for (std::size_t c = 0; c < chunks.chunkCount(); ++c)
        sizes[c] = chunks.chunkSizeBytes(static_cast<ChunkId>(c));
    return sizes;
}

} // namespace

TrgStateWalker::TrgStateWalker(const Program &program,
                               const ChunkMap &chunks,
                               const TrgBuildOptions &options)
    : program_(program),
      chunks_(chunks),
      popular_(options.popular),
      proc_q_(procSizesOf(program), options.byte_budget),
      chunk_q_(chunkSizesOf(chunks), options.byte_budget),
      need_proc_pass_(options.build_select ||
                      static_cast<bool>(options.observer)),
      build_place_(options.build_place),
      chunk_bytes_(chunks.chunkBytes())
{
    if (popular_) {
        require(popular_->size() == program.procCount(),
                "TrgStateWalker: popularity mask size mismatch");
    }
}

void
TrgStateWalker::advance(const TraceEvent &ev)
{
    require(ev.proc < program_.procCount(),
            "TrgStateWalker: invalid proc");
    require(ev.length > 0, "TrgStateWalker: zero-length run");
    require(static_cast<std::uint64_t>(ev.offset) + ev.length <=
                program_.proc(ev.proc).size_bytes,
            "TrgStateWalker: run exceeds procedure bounds");
    if (popular_ && !(*popular_)[ev.proc])
        return;
    if (need_proc_pass_ && ev.proc != last_proc_)
        proc_q_.touch(ev.proc);
    last_proc_ = ev.proc;
    if (build_place_) {
        const std::uint32_t first = ev.offset / chunk_bytes_;
        const std::uint32_t last =
            (ev.offset + ev.length - 1) / chunk_bytes_;
        for (std::uint32_t idx = first; idx <= last; ++idx) {
            const ChunkId chunk = chunks_.chunkId(ev.proc, idx);
            if (chunk == last_chunk_)
                continue;
            chunk_q_.touch(chunk);
            last_chunk_ = chunk;
        }
    }
}

std::vector<TraceShard>
planTraceShards(const Program &program, const ChunkMap &chunks,
                const Trace &trace, const TrgBuildOptions &options,
                std::size_t shard_count)
{
    require(shard_count >= 1, "planTraceShards: zero shard count");
    require(trace.procCount() == program.procCount(),
            "planTraceShards: program/trace mismatch");
    PhaseTimer timer("trg_shard_plan");
    const std::vector<TraceEvent> &events = trace.events();
    const std::size_t n = events.size();

    std::vector<TraceShard> shards(shard_count);
    TrgStateWalker walker(program, chunks, options);
    std::size_t next_shard = 0;

    for (std::size_t i = 0; i <= n; ++i) {
        while (next_shard < shard_count &&
               i == next_shard * n / shard_count) {
            TraceShard &shard = shards[next_shard];
            shard.begin = i;
            shard.end = (next_shard + 1) * n / shard_count;
            shard.proc_queue = walker.procQueue();
            shard.chunk_queue = walker.chunkQueue();
            shard.last_proc = walker.lastProc();
            shard.last_chunk = walker.lastChunk();
            ++next_shard;
        }
        if (i == n)
            break;
        walker.advance(events[i]);
    }
    return shards;
}

TrgBuildResult
buildTrgs(const Program &program, const ChunkMap &chunks, const Trace &trace,
          const TrgBuildOptions &options)
{
    require(trace.procCount() == program.procCount(),
            "buildTrgs: program/trace mismatch");
    PhaseTimer timer("trg_build");

    const std::size_t jobs = static_cast<std::size_t>(execJobs());
    const std::size_t shard_count =
        std::min(jobs, trace.size() / kMinEventsPerShard);
    TrgBuildResult result;
    if (shard_count <= 1 || options.observer) {
        // Serial walk: the reference semantics. The observer hook sees
        // every step in order, so it pins the build to this path.
        TrgAccumulator accumulator(program, chunks, options);
        accumulator.onTrace(trace);
        result = accumulator.take();
    } else {
        const std::vector<TraceShard> shards =
            planTraceShards(program, chunks, trace, options, shard_count);
        const std::vector<TraceEvent> &events = trace.events();
        std::vector<std::unique_ptr<TrgAccumulator>> accumulators(
            shards.size());
        parallelFor(shards.size(), [&](std::size_t s) {
            auto acc = std::make_unique<TrgAccumulator>(program, chunks,
                                                        options);
            const TraceShard &shard = shards[s];
            acc->seedState(shard.proc_queue, shard.chunk_queue,
                           shard.last_proc, shard.last_chunk);
            for (std::size_t i = shard.begin; i < shard.end; ++i)
                acc->onRun(events[i].proc, events[i].offset,
                           events[i].length);
            accumulators[s] = std::move(acc);
        });
        for (std::size_t s = 1; s < accumulators.size(); ++s)
            accumulators[0]->merge(*accumulators[s]);
        result = accumulators[0]->take();
        MetricsRegistry::current().counter("trg.shards")
            .add(shards.size());
    }

    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("trg.builds").add();
    metrics.counter("trg.events").add(trace.size());
    metrics.counter("trg.proc_steps").add(result.proc_steps);
    metrics.counter("trg.select_edges").add(result.select.edgeCount());
    metrics.counter("trg.place_edges").add(result.place.edgeCount());
    metrics.counter("trg.proc_evictions").add(result.proc_evictions);
    metrics.counter("trg.chunk_evictions").add(result.chunk_evictions);
    metrics.gauge("trg.avg_queue_procs").set(result.avg_queue_procs);

    if (logEnabled(LogLevel::kDebug)) {
        logDebug("trg", "built TRGs",
                 {{"events", trace.size()},
                  {"proc_steps", result.proc_steps},
                  {"select_edges", result.select.edgeCount()},
                  {"place_edges", result.place.edgeCount()},
                  {"avg_queue_procs", result.avg_queue_procs},
                  {"q_budget", options.byte_budget},
                  {"shards", std::max<std::size_t>(shard_count, 1)},
                  {"ms", timer.elapsedMs()}});
    }
    return result;
}

} // namespace topo
