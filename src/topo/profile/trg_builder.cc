#include "topo/profile/trg_builder.hh"

#include <algorithm>
#include <memory>

#include "topo/exec/exec.hh"
#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/profile/trg_accumulator.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Shards below this many events are not worth the plan replay. */
constexpr std::size_t kMinEventsPerShard = 8192;

std::vector<std::uint32_t>
procSizesOf(const Program &program)
{
    std::vector<std::uint32_t> sizes(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i)
        sizes[i] = program.proc(static_cast<ProcId>(i)).size_bytes;
    return sizes;
}

std::vector<std::uint32_t>
chunkSizesOf(const ChunkMap &chunks)
{
    std::vector<std::uint32_t> sizes(chunks.chunkCount());
    for (std::size_t c = 0; c < chunks.chunkCount(); ++c)
        sizes[c] = chunks.chunkSizeBytes(static_cast<ChunkId>(c));
    return sizes;
}

} // namespace

std::vector<TraceShard>
planTraceShards(const Program &program, const ChunkMap &chunks,
                const Trace &trace, const TrgBuildOptions &options,
                std::size_t shard_count)
{
    require(shard_count >= 1, "planTraceShards: zero shard count");
    require(trace.procCount() == program.procCount(),
            "planTraceShards: program/trace mismatch");
    if (options.popular) {
        require(options.popular->size() == program.procCount(),
                "planTraceShards: popularity mask size mismatch");
    }
    PhaseTimer timer("trg_shard_plan");
    const std::vector<TraceEvent> &events = trace.events();
    const std::size_t n = events.size();

    std::vector<TraceShard> shards(shard_count);
    TemporalQueue proc_q(procSizesOf(program), options.byte_budget);
    TemporalQueue chunk_q(chunkSizesOf(chunks), options.byte_budget);
    const bool need_proc_pass =
        options.build_select || static_cast<bool>(options.observer);
    const std::uint32_t chunk_bytes = chunks.chunkBytes();
    ProcId last_proc = kInvalidProc;
    ChunkId last_chunk = static_cast<ChunkId>(~0u);
    std::size_t next_shard = 0;

    for (std::size_t i = 0; i <= n; ++i) {
        while (next_shard < shard_count &&
               i == next_shard * n / shard_count) {
            TraceShard &shard = shards[next_shard];
            shard.begin = i;
            shard.end = (next_shard + 1) * n / shard_count;
            shard.proc_queue = proc_q.contents();
            shard.chunk_queue = chunk_q.contents();
            shard.last_proc = last_proc;
            shard.last_chunk = last_chunk;
            ++next_shard;
        }
        if (i == n)
            break;
        const TraceEvent &ev = events[i];
        // Mirror TrgAccumulator::onRun's validation so a malformed
        // trace fails here with the same error class it would fail
        // with serially.
        require(ev.proc < program.procCount(),
                "planTraceShards: invalid proc");
        require(ev.length > 0, "planTraceShards: zero-length run");
        require(static_cast<std::uint64_t>(ev.offset) + ev.length <=
                    program.proc(ev.proc).size_bytes,
                "planTraceShards: run exceeds procedure bounds");
        if (options.popular && !(*options.popular)[ev.proc])
            continue;
        if (need_proc_pass && ev.proc != last_proc)
            proc_q.touch(ev.proc);
        last_proc = ev.proc;
        if (options.build_place) {
            const std::uint32_t first = ev.offset / chunk_bytes;
            const std::uint32_t last =
                (ev.offset + ev.length - 1) / chunk_bytes;
            for (std::uint32_t idx = first; idx <= last; ++idx) {
                const ChunkId chunk = chunks.chunkId(ev.proc, idx);
                if (chunk == last_chunk)
                    continue;
                chunk_q.touch(chunk);
                last_chunk = chunk;
            }
        }
    }
    return shards;
}

TrgBuildResult
buildTrgs(const Program &program, const ChunkMap &chunks, const Trace &trace,
          const TrgBuildOptions &options)
{
    require(trace.procCount() == program.procCount(),
            "buildTrgs: program/trace mismatch");
    PhaseTimer timer("trg_build");

    const std::size_t jobs = static_cast<std::size_t>(execJobs());
    const std::size_t shard_count =
        std::min(jobs, trace.size() / kMinEventsPerShard);
    TrgBuildResult result;
    if (shard_count <= 1 || options.observer) {
        // Serial walk: the reference semantics. The observer hook sees
        // every step in order, so it pins the build to this path.
        TrgAccumulator accumulator(program, chunks, options);
        accumulator.onTrace(trace);
        result = accumulator.take();
    } else {
        const std::vector<TraceShard> shards =
            planTraceShards(program, chunks, trace, options, shard_count);
        const std::vector<TraceEvent> &events = trace.events();
        std::vector<std::unique_ptr<TrgAccumulator>> accumulators(
            shards.size());
        parallelFor(shards.size(), [&](std::size_t s) {
            auto acc = std::make_unique<TrgAccumulator>(program, chunks,
                                                        options);
            const TraceShard &shard = shards[s];
            acc->seedState(shard.proc_queue, shard.chunk_queue,
                           shard.last_proc, shard.last_chunk);
            for (std::size_t i = shard.begin; i < shard.end; ++i)
                acc->onRun(events[i].proc, events[i].offset,
                           events[i].length);
            accumulators[s] = std::move(acc);
        });
        for (std::size_t s = 1; s < accumulators.size(); ++s)
            accumulators[0]->merge(*accumulators[s]);
        result = accumulators[0]->take();
        MetricsRegistry::current().counter("trg.shards")
            .add(shards.size());
    }

    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("trg.builds").add();
    metrics.counter("trg.events").add(trace.size());
    metrics.counter("trg.proc_steps").add(result.proc_steps);
    metrics.counter("trg.select_edges").add(result.select.edgeCount());
    metrics.counter("trg.place_edges").add(result.place.edgeCount());
    metrics.counter("trg.proc_evictions").add(result.proc_evictions);
    metrics.counter("trg.chunk_evictions").add(result.chunk_evictions);
    metrics.gauge("trg.avg_queue_procs").set(result.avg_queue_procs);

    if (logEnabled(LogLevel::kDebug)) {
        logDebug("trg", "built TRGs",
                 {{"events", trace.size()},
                  {"proc_steps", result.proc_steps},
                  {"select_edges", result.select.edgeCount()},
                  {"place_edges", result.place.edgeCount()},
                  {"avg_queue_procs", result.avg_queue_procs},
                  {"q_budget", options.byte_budget},
                  {"shards", std::max<std::size_t>(shard_count, 1)},
                  {"ms", timer.elapsedMs()}});
    }
    return result;
}

} // namespace topo
