#include "topo/profile/trg_accumulator.hh"

#include "topo/util/error.hh"

namespace topo
{

namespace
{

std::vector<std::uint32_t>
procSizes(const Program &program)
{
    std::vector<std::uint32_t> sizes(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i)
        sizes[i] = program.proc(static_cast<ProcId>(i)).size_bytes;
    return sizes;
}

std::vector<std::uint32_t>
chunkSizes(const ChunkMap &chunks)
{
    std::vector<std::uint32_t> sizes(chunks.chunkCount());
    for (std::size_t c = 0; c < chunks.chunkCount(); ++c)
        sizes[c] = chunks.chunkSizeBytes(static_cast<ChunkId>(c));
    return sizes;
}

} // namespace

TrgAccumulator::TrgAccumulator(const Program &program,
                               const ChunkMap &chunks,
                               const TrgBuildOptions &options)
    : program_(program),
      chunks_(chunks),
      options_(options),
      proc_q_(procSizes(program), options.byte_budget),
      chunk_q_(chunkSizes(chunks), options.byte_budget),
      last_chunk_(static_cast<ChunkId>(~0u))
{
    require(options_.byte_budget > 0, "TrgAccumulator: zero byte budget");
    if (options_.popular) {
        require(options_.popular->size() == program.procCount(),
                "TrgAccumulator: popularity mask size mismatch");
    }
    reset();
}

void
TrgAccumulator::reset()
{
    result_ = TrgBuildResult{};
    result_.select = WeightedGraph(options_.build_select
                                       ? program_.procCount()
                                       : 0);
    result_.place =
        WeightedGraph(options_.build_place ? chunks_.chunkCount() : 0);
    proc_q_.clear();
    chunk_q_.clear();
    queue_size_sum_ = 0;
    merged_proc_evictions_ = 0;
    merged_chunk_evictions_ = 0;
    last_proc_ = kInvalidProc;
    last_chunk_ = static_cast<ChunkId>(~0u);
}

void
TrgAccumulator::seedState(const std::vector<BlockId> &proc_queue,
                          const std::vector<BlockId> &chunk_queue,
                          ProcId last_proc, ChunkId last_chunk)
{
    require(result_.proc_steps == 0 && queue_size_sum_ == 0 &&
                proc_q_.size() == 0 && chunk_q_.size() == 0,
            "TrgAccumulator::seedState: session already started");
    proc_q_.loadState(proc_queue);
    chunk_q_.loadState(chunk_queue);
    last_proc_ = last_proc;
    last_chunk_ = last_chunk;
}

void
TrgAccumulator::merge(const TrgAccumulator &other)
{
    require(&other != this, "TrgAccumulator::merge: self merge");
    require(other.options_.build_select == options_.build_select &&
                other.options_.build_place == options_.build_place &&
                other.options_.byte_budget == options_.byte_budget,
            "TrgAccumulator::merge: incompatible build options");
    if (options_.build_select)
        result_.select.addGraph(other.result_.select);
    if (options_.build_place)
        result_.place.addGraph(other.result_.place);
    result_.proc_steps += other.result_.proc_steps;
    queue_size_sum_ += other.queue_size_sum_;
    merged_proc_evictions_ +=
        other.merged_proc_evictions_ + other.proc_q_.evictionCount();
    merged_chunk_evictions_ +=
        other.merged_chunk_evictions_ + other.chunk_q_.evictionCount();
}

void
TrgAccumulator::onRun(ProcId proc, std::uint32_t offset,
                      std::uint32_t length)
{
    require(proc < program_.procCount(), "TrgAccumulator: invalid proc");
    require(length > 0, "TrgAccumulator: zero-length run");
    require(static_cast<std::uint64_t>(offset) + length <=
                program_.proc(proc).size_bytes,
            "TrgAccumulator: run exceeds procedure bounds");
    if (options_.popular && !(*options_.popular)[proc])
        return;

    const bool need_proc_pass = options_.build_select ||
                                static_cast<bool>(options_.observer);
    if (need_proc_pass && proc != last_proc_) {
        const bool had_prev = proc_q_.reference(proc, between_);
        if (had_prev && options_.build_select) {
            for (BlockId q : between_)
                result_.select.addWeight(proc, q, 1.0);
        }
        ++result_.proc_steps;
        queue_size_sum_ += proc_q_.size();
        if (options_.observer)
            options_.observer(proc, had_prev, between_, proc_q_);
    }
    last_proc_ = proc;

    if (options_.build_place) {
        const std::uint32_t chunk_bytes = chunks_.chunkBytes();
        const std::uint32_t first = offset / chunk_bytes;
        const std::uint32_t last = (offset + length - 1) / chunk_bytes;
        for (std::uint32_t idx = first; idx <= last; ++idx) {
            const ChunkId chunk = chunks_.chunkId(proc, idx);
            if (chunk == last_chunk_)
                continue;
            const bool had_prev = chunk_q_.reference(chunk, between_);
            if (had_prev) {
                for (BlockId q : between_)
                    result_.place.addWeight(chunk, q, 1.0);
            }
            last_chunk_ = chunk;
        }
    }
}

void
TrgAccumulator::onTrace(const Trace &trace)
{
    require(trace.procCount() == program_.procCount(),
            "TrgAccumulator: program/trace mismatch");
    for (const TraceEvent &ev : trace.events())
        onRun(ev.proc, ev.offset, ev.length);
}

TrgBuildResult
TrgAccumulator::take()
{
    result_.avg_queue_procs =
        result_.proc_steps
            ? static_cast<double>(queue_size_sum_) /
                  static_cast<double>(result_.proc_steps)
            : 0.0;
    result_.proc_evictions =
        merged_proc_evictions_ + proc_q_.evictionCount();
    result_.chunk_evictions =
        merged_chunk_evictions_ + chunk_q_.evictionCount();
    TrgBuildResult out = std::move(result_);
    reset();
    return out;
}

} // namespace topo
