/**
 * @file
 * ProfileCollector: a one-pass, trace-free profiling frontend.
 *
 * Section 4.4 describes generating TRGs during program execution with
 * instrumentation (their instrumented binaries ran ~25x slower). This
 * class is the library-side half of that design: an instrumented
 * program (or a simulator) calls onRun() for every execution run, and
 * at the end the collector hands back everything the placement
 * pipeline needs — WCG, TRG_select, TRG_place, dynamic statistics —
 * without ever materialising the trace in memory.
 */

#ifndef TOPO_PROFILE_COLLECTOR_HH
#define TOPO_PROFILE_COLLECTOR_HH

#include <memory>

#include "topo/profile/trg_accumulator.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/trace/trace_stats.hh"

namespace topo
{

/** Options of a collection session. */
struct CollectorOptions
{
    /** Q byte budget (typically 2x the target cache size). */
    std::uint64_t byte_budget = 2 * 8 * 1024;
    /** Chunk size for TRG_place. */
    std::uint32_t chunk_bytes = 256;
    /** Build the procedure-granularity TRG_select. */
    bool build_select = true;
    /** Build the chunk-granularity TRG_place. */
    bool build_place = true;
    /** Build the call-transition WCG. */
    bool build_wcg = true;
    /**
     * Optional popularity mask applied to the TRGs (the WCG and the
     * statistics always see every procedure, as the popular set is
     * usually *derived* from them).
     */
    const std::vector<bool> *popular = nullptr;
};

/** Everything a collection session produces. */
struct CollectedProfile
{
    WeightedGraph wcg;
    WeightedGraph trg_select;
    WeightedGraph trg_place;
    TraceStats stats;
    double avg_queue_procs = 0.0;
    std::uint64_t proc_steps = 0;
};

/**
 * Streaming profiler: feed runs, take the profile.
 */
class ProfileCollector
{
  public:
    /**
     * @param program Procedure inventory (must outlive the collector).
     * @param options Session options.
     */
    ProfileCollector(const Program &program,
                     const CollectorOptions &options);

    ~ProfileCollector();
    ProfileCollector(const ProfileCollector &) = delete;
    ProfileCollector &operator=(const ProfileCollector &) = delete;

    /** Record one execution run (the instrumentation callback). */
    void onRun(ProcId proc, std::uint32_t offset, std::uint32_t length);

    /** Record a whole-procedure execution. */
    void onProcedure(ProcId proc);

    /** Replay a stored trace (convenience / testing). */
    void onTrace(const Trace &trace);

    /** Chunk map the collector built for TRG_place. */
    const ChunkMap &chunks() const { return *chunks_; }

    /** Runs recorded so far. */
    std::uint64_t runCount() const { return stats_.total_runs; }

    /**
     * End the session and surrender the profile. The collector resets
     * and can record a fresh session afterwards.
     */
    CollectedProfile take();

  private:
    const Program &program_;
    CollectorOptions options_;
    std::unique_ptr<ChunkMap> chunks_;
    std::unique_ptr<TrgAccumulator> trgs_;
    TraceStats stats_;
    ProcId last_proc_ = kInvalidProc;
    WeightedGraph wcg_;

    void resetSession();
};

} // namespace topo

#endif // TOPO_PROFILE_COLLECTOR_HH
