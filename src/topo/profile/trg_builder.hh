/**
 * @file
 * Construction of Temporal Relationship Graphs (Sections 3 and 4.1).
 *
 * A single pass over the trace drives two TemporalQueues — one at
 * procedure granularity producing TRG_select, one at chunk granularity
 * producing TRG_place — exactly as the paper's "straightforward to
 * generate both TRGs simultaneously" remark describes. Edge weights
 * count how often block q was referenced between two consecutive
 * references to block p while p was still resident in Q.
 */

#ifndef TOPO_PROFILE_TRG_BUILDER_HH
#define TOPO_PROFILE_TRG_BUILDER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "topo/profile/chunk_map.hh"
#include "topo/profile/temporal_queue.hh"
#include "topo/profile/weighted_graph.hh"
#include "topo/trace/trace.hh"

namespace topo
{

/** Options controlling a TRG build. */
struct TrgBuildOptions
{
    /**
     * Byte budget of Q. The paper found twice the cache size to work
     * well; callers typically pass 2 * cache.size_bytes.
     */
    std::uint64_t byte_budget = 2 * 8 * 1024;

    /** Build the procedure-granularity TRG_select. */
    bool build_select = true;

    /** Build the chunk-granularity TRG_place. */
    bool build_place = true;

    /**
     * Optional popularity mask (per procedure). When set, references
     * to unpopular procedures are ignored entirely, as in Section 4's
     * adoption of Hashemi et al.'s popular-procedure restriction.
     */
    const std::vector<bool> *popular = nullptr;

    /**
     * Optional per-step observer over the procedure-granularity queue,
     * used by the Figure 3 walkthrough. Called after each reference is
     * processed with: the referenced procedure, whether a previous
     * reference existed, the blocks found between the two references,
     * and the queue itself.
     */
    std::function<void(ProcId, bool, const std::vector<BlockId> &,
                       const TemporalQueue &)>
        observer;
};

/** Result of a TRG build. */
struct TrgBuildResult
{
    /** Procedure-granularity TRG (empty graph if not requested). */
    WeightedGraph select;
    /** Chunk-granularity TRG (empty graph if not requested). */
    WeightedGraph place;
    /** Average number of procedures resident in Q per step (Table 1). */
    double avg_queue_procs = 0.0;
    /** Number of procedure-granularity processing steps. */
    std::uint64_t proc_steps = 0;
    /** Budget evictions from the procedure-granularity Q. */
    std::uint64_t proc_evictions = 0;
    /** Budget evictions from the chunk-granularity Q. */
    std::uint64_t chunk_evictions = 0;
};

/**
 * One shard of a trace for parallel profile construction: an event
 * range plus the exact serial walk state at its first event, so a
 * shard-local accumulator seeded with it emits exactly the edges the
 * serial walk emits over [begin, end).
 */
struct TraceShard
{
    /** Event index range [begin, end). */
    std::size_t begin = 0;
    std::size_t end = 0;
    /** Procedure queue contents at `begin`, oldest first. */
    std::vector<BlockId> proc_queue;
    /** Chunk queue contents at `begin`, oldest first. */
    std::vector<BlockId> chunk_queue;
    /** Procedure of the last popular run before `begin`. */
    ProcId last_proc = kInvalidProc;
    /** Last chunk referenced before `begin` (~0u = none). */
    ChunkId last_chunk = static_cast<ChunkId>(~0u);
};

/**
 * State-only replay of the TRG walk: advances the procedure and chunk
 * TemporalQueues and the run-deduplication state (last proc / last
 * chunk) through trace events WITHOUT collecting between-lists or
 * emitting edges — O(1) amortised per event. This is the warm-up
 * machinery shared by planTraceShards (queue state at shard
 * boundaries) and the representative-interval sampler (queue state at
 * the start of each measured window); a TrgAccumulator seeded with a
 * walker's state continues the serial walk bit-exactly.
 *
 * Validation mirrors TrgAccumulator::onRun, so a malformed trace
 * fails here with the same error class it would fail with serially.
 */
class TrgStateWalker
{
  public:
    TrgStateWalker(const Program &program, const ChunkMap &chunks,
                   const TrgBuildOptions &options);

    /** Advance the state through one trace event. */
    void advance(const TraceEvent &event);

    /** Procedure queue contents, oldest first. */
    std::vector<BlockId> procQueue() const { return proc_q_.contents(); }
    /** Chunk queue contents, oldest first. */
    std::vector<BlockId> chunkQueue() const { return chunk_q_.contents(); }
    /** Procedure of the last popular run seen (kInvalidProc = none). */
    ProcId lastProc() const { return last_proc_; }
    /** Last chunk referenced (~0u = none). */
    ChunkId lastChunk() const { return last_chunk_; }

  private:
    const Program &program_;
    const ChunkMap &chunks_;
    const std::vector<bool> *popular_;
    TemporalQueue proc_q_;
    TemporalQueue chunk_q_;
    bool need_proc_pass_;
    bool build_place_;
    std::uint32_t chunk_bytes_;
    ProcId last_proc_ = kInvalidProc;
    ChunkId last_chunk_ = static_cast<ChunkId>(~0u);
};

/**
 * Split @p trace into @p shard_count contiguous event ranges and
 * capture, via one fast state-only replay (TemporalQueue::touch, no
 * between-list collection or edge emission), the exact queue and
 * run-deduplication state at each shard boundary. Seeding a fresh
 * TrgAccumulator from shard i and replaying its range reproduces the
 * serial walk over that range bit-exactly, so the in-order merge of
 * all shards equals the serial build — including eviction and
 * queue-occupancy statistics.
 */
std::vector<TraceShard>
planTraceShards(const Program &program, const ChunkMap &chunks,
                const Trace &trace, const TrgBuildOptions &options,
                std::size_t shard_count);

/**
 * Build TRG_select and/or TRG_place from a trace.
 *
 * When the execution layer is configured with more than one lane
 * (execJobs() > 1), no per-step observer is installed, and the trace
 * is large enough to amortise the shard plan, the build runs sharded:
 * planTraceShards + one seeded TrgAccumulator per shard on the shared
 * pool, merged in shard order. The result is bit-identical to the
 * serial walk for any jobs value.
 *
 * @param program Procedure inventory.
 * @param chunks  Chunking of the program (for TRG_place).
 * @param trace   The profiling trace.
 * @param options Build options.
 */
TrgBuildResult buildTrgs(const Program &program, const ChunkMap &chunks,
                         const Trace &trace, const TrgBuildOptions &options);

} // namespace topo

#endif // TOPO_PROFILE_TRG_BUILDER_HH
