/**
 * @file
 * Streaming TRG construction.
 *
 * Section 4.4: "instead of processing traces we generate the TRGs
 * during program execution using instrumentation techniques". The
 * TrgAccumulator is that path — it consumes execution runs one at a
 * time (e.g. from an instrumentation callback) and produces exactly
 * the graphs the batch builder produces from a stored trace. The batch
 * buildTrgs() is a thin wrapper over it.
 */

#ifndef TOPO_PROFILE_TRG_ACCUMULATOR_HH
#define TOPO_PROFILE_TRG_ACCUMULATOR_HH

#include "topo/profile/trg_builder.hh"

namespace topo
{

/** Incremental TRG builder; one instance per profiling session. */
class TrgAccumulator
{
  public:
    /**
     * @param program Procedure inventory (must outlive the
     *                accumulator).
     * @param chunks  Chunk map (must outlive the accumulator).
     * @param options Build options; the observer hook, popularity
     *                filter, and graph selection behave exactly as in
     *                buildTrgs().
     */
    TrgAccumulator(const Program &program, const ChunkMap &chunks,
                   const TrgBuildOptions &options);

    /** Feed one execution run (the instrumentation callback). */
    void onRun(ProcId proc, std::uint32_t offset, std::uint32_t length);

    /** Feed every run of a stored trace. */
    void onTrace(const Trace &trace);

    /**
     * Seed the session's queue and run-deduplication state so onRun
     * continues exactly where a serial walk left off at a shard
     * boundary (parallel TRG builds; see planTraceShards). Must be
     * called on a fresh session, before any onRun.
     *
     * @param proc_queue  Procedure queue contents, oldest first.
     * @param chunk_queue Chunk queue contents, oldest first.
     * @param last_proc   Procedure of the preceding (popular) run, or
     *                    kInvalidProc at trace start.
     * @param last_chunk  Last chunk referenced, or ~0u at trace start.
     */
    void seedState(const std::vector<BlockId> &proc_queue,
                   const std::vector<BlockId> &chunk_queue,
                   ProcId last_proc, ChunkId last_chunk);

    /**
     * Fold another accumulator's session into this one: TRG edge
     * weights add element-wise, step/eviction/queue-size statistics
     * sum. Associative, and with shards seeded via seedState the
     * left-to-right fold over shard accumulators equals the serial
     * walk exactly (weights are integer-valued counts below 2^53, so
     * FP addition is exact). The other accumulator's session state is
     * left untouched.
     */
    void merge(const TrgAccumulator &other);

    /** Number of procedure-granularity steps processed so far. */
    std::uint64_t procSteps() const { return result_.proc_steps; }

    /**
     * Finish the session and surrender the graphs. The accumulator is
     * left empty; further onRun calls start a fresh session.
     */
    TrgBuildResult take();

  private:
    const Program &program_;
    const ChunkMap &chunks_;
    TrgBuildOptions options_;
    TrgBuildResult result_;
    TemporalQueue proc_q_;
    TemporalQueue chunk_q_;
    std::vector<BlockId> between_;
    std::uint64_t queue_size_sum_ = 0;
    /** Evictions folded in from merged shard accumulators. */
    std::uint64_t merged_proc_evictions_ = 0;
    std::uint64_t merged_chunk_evictions_ = 0;
    ProcId last_proc_ = kInvalidProc;
    ChunkId last_chunk_;

    void reset();
};

} // namespace topo

#endif // TOPO_PROFILE_TRG_ACCUMULATOR_HH
