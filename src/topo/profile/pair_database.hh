/**
 * @file
 * PairDatabase: the Section 6 temporal-relationship structure D.
 *
 * For set-associative caches a single intervening block no longer
 * guarantees eviction; D(p,{r,s}) records how often the *pair* {r,s}
 * appeared between two consecutive references to p. In a 2-way LRU set
 * that pair is exactly what is needed to displace p.
 *
 * Tractability: the number of pairs between two references grows
 * quadratically with the reuse distance, so each processing step
 * enumerates pairs only among the @c pair_window most recent distinct
 * blocks between the references (default 24). The blocks closest to the
 * new reference are the ones most likely to still be resident, so the
 * cap discards the least informative pairs first. The cap is swept by
 * tests and documented in DESIGN.md.
 */

#ifndef TOPO_PROFILE_PAIR_DATABASE_HH
#define TOPO_PROFILE_PAIR_DATABASE_HH

#include <cstdint>
#include <vector>

#include "topo/profile/weighted_graph.hh"
#include "topo/trace/trace.hh"
#include "topo/util/flat_map.hh"

namespace topo
{

/**
 * Frequency table D(p,{r,s}) over block ids (procedure granularity in
 * this implementation; block ids must fit in 21 bits).
 */
class PairDatabase
{
  public:
    PairDatabase() = default;

    /** Add weight to D(p,{r,s}); r and s are unordered, all distinct. */
    void add(BlockId p, BlockId r, BlockId s, double w);

    /** Lookup D(p,{r,s}); 0 when absent. */
    double get(BlockId p, BlockId r, BlockId s) const;

    /** Number of stored (p,{r,s}) entries. */
    std::size_t size() const { return table_.size(); }

    /** Drop entries with weight below @p min_weight. */
    void prune(double min_weight);

    /**
     * Fold another database into this one: weights of shared
     * (p,{r,s}) keys add, unshared keys are inserted. Associative and
     * commutative up to FP addition order; weights are integer counts
     * in practice, so shard merges are exact (DESIGN.md §9).
     */
    void merge(const PairDatabase &other);

    /** One stored association. */
    struct Entry
    {
        BlockId p;
        BlockId r;
        BlockId s;
        double weight;
    };

    /**
     * All entries, sorted by (p, r, s) with r < s. The deterministic
     * order lets placement code iterate entries into floating-point
     * cost accumulation without depending on hash layout.
     */
    std::vector<Entry> entries() const;

  private:
    static std::uint64_t key(BlockId p, BlockId r, BlockId s);

    /**
     * Open-addressing table over the 63-bit packed (p, lo, hi) key;
     * the hot add() path is one linear probe. Deletion-free: prune()
     * rebuilds via FlatMap::filter.
     */
    util::FlatMap<std::uint64_t, double> table_;
};

/** Options for building a PairDatabase from a trace. */
struct PairBuildOptions
{
    /** Q byte budget (typically 2x cache size). */
    std::uint64_t byte_budget = 2 * 8 * 1024;
    /** Enumerate pairs among at most this many most-recent blocks. */
    std::uint32_t pair_window = 24;
    /** Optional per-procedure popularity mask. */
    const std::vector<bool> *popular = nullptr;
};

/**
 * Build D over *procedures* from a trace via the same ordered-set walk
 * used for TRGs. With execJobs() > 1 and a large enough trace the walk
 * shards exactly like buildTrgs (planTraceShards seeds + in-order
 * merge) and stays bit-identical to the serial build.
 */
PairDatabase buildPairDatabase(const Program &program, const Trace &trace,
                               const PairBuildOptions &options);

} // namespace topo

#endif // TOPO_PROFILE_PAIR_DATABASE_HH
