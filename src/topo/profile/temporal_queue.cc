#include "topo/profile/temporal_queue.hh"

#include "topo/util/error.hh"

namespace topo
{

TemporalQueue::TemporalQueue(std::vector<std::uint32_t> block_sizes,
                             std::uint64_t byte_budget)
    : sizes_(std::move(block_sizes)),
      byte_budget_(byte_budget),
      prev_(sizes_.size(), kNone),
      next_(sizes_.size(), kNone),
      resident_(sizes_.size(), 0)
{
    require(byte_budget_ > 0, "TemporalQueue: zero byte budget");
}

void
TemporalQueue::detach(BlockId id)
{
    const BlockId p = prev_[id];
    const BlockId n = next_[id];
    if (p != kNone)
        next_[p] = n;
    else
        head_ = n;
    if (n != kNone)
        prev_[n] = p;
    else
        tail_ = p;
    prev_[id] = kNone;
    next_[id] = kNone;
    resident_[id] = false;
    --count_;
    resident_bytes_ -= sizes_[id];
}

void
TemporalQueue::append(BlockId id)
{
    prev_[id] = tail_;
    next_[id] = kNone;
    if (tail_ != kNone)
        next_[tail_] = id;
    else
        head_ = id;
    tail_ = id;
    resident_[id] = true;
    ++count_;
    resident_bytes_ += sizes_[id];
}

void
TemporalQueue::trim()
{
    // Section 3: "remove the oldest members of Q until the removal of
    // the next least-recently-used identifier would cause the total
    // size of remaining code blocks to be less than [the budget]".
    while (head_ != kNone &&
           resident_bytes_ - sizes_[head_] >= byte_budget_) {
        detach(head_);
        ++evictions_;
    }
}

bool
TemporalQueue::reference(BlockId id, std::vector<BlockId> &between)
{
    require(id < sizes_.size(), "TemporalQueue::reference: id out of range");
    between.clear();
    if (resident_[id]) {
        // Collect everything after the previous occurrence: those are
        // exactly the blocks referenced between the two references.
        for (BlockId cur = next_[id]; cur != kNone; cur = next_[cur])
            between.push_back(cur);
        detach(id);
        append(id);
        return true;
    }
    append(id);
    trim();
    return false;
}

void
TemporalQueue::touch(BlockId id)
{
    require(id < sizes_.size(), "TemporalQueue::touch: id out of range");
    if (resident_[id]) {
        detach(id);
        append(id);
        return;
    }
    append(id);
    trim();
}

void
TemporalQueue::loadState(const std::vector<BlockId> &blocks)
{
    clear();
    for (const BlockId id : blocks) {
        require(id < sizes_.size(),
                "TemporalQueue::loadState: id out of range");
        require(!resident_[id],
                "TemporalQueue::loadState: duplicate block id");
        append(id);
    }
}

std::vector<BlockId>
TemporalQueue::contents() const
{
    std::vector<BlockId> out;
    out.reserve(count_);
    for (BlockId cur = head_; cur != kNone; cur = next_[cur])
        out.push_back(cur);
    return out;
}

void
TemporalQueue::clear()
{
    for (BlockId cur = head_; cur != kNone;) {
        const BlockId nxt = next_[cur];
        prev_[cur] = kNone;
        next_[cur] = kNone;
        resident_[cur] = false;
        cur = nxt;
    }
    head_ = tail_ = kNone;
    count_ = 0;
    resident_bytes_ = 0;
    evictions_ = 0;
}

} // namespace topo
