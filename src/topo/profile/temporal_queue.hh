/**
 * @file
 * TemporalQueue: the ordered set Q of Section 3.
 *
 * Q holds recently-referenced code-block identifiers in trace order,
 * bounded by a byte budget (the paper uses twice the cache size). Each
 * block appears at most once — on a repeat reference the older entry
 * is consumed — which lets us implement Q as an intrusive doubly-linked
 * list indexed by block id: O(1) membership test, O(1) removal, O(k)
 * walk over the k blocks between two consecutive references.
 */

#ifndef TOPO_PROFILE_TEMPORAL_QUEUE_HH
#define TOPO_PROFILE_TEMPORAL_QUEUE_HH

#include <cstdint>
#include <vector>

#include "topo/profile/weighted_graph.hh"

namespace topo
{

/**
 * Byte-budgeted ordered set of code-block ids.
 */
class TemporalQueue
{
  public:
    /**
     * @param block_sizes Per-block byte sizes (indexed by block id).
     * @param byte_budget Eviction threshold: after processing, the
     *                    oldest entries are dropped while removal keeps
     *                    the resident total at or above this budget.
     */
    TemporalQueue(std::vector<std::uint32_t> block_sizes,
                  std::uint64_t byte_budget);

    /** Sentinel id meaning "none". */
    static constexpr BlockId kNone = ~BlockId{0};

    /** True when @p id is currently resident. */
    bool
    contains(BlockId id) const
    {
        return resident_[id] != 0;
    }

    /** Id following @p id towards the most recent end; kNone at end. */
    BlockId
    after(BlockId id) const
    {
        return next_[id];
    }

    /** Oldest resident id; kNone when empty. */
    BlockId oldest() const { return head_; }

    /** Most recent resident id; kNone when empty. */
    BlockId newest() const { return tail_; }

    /** Number of resident blocks. */
    std::size_t size() const { return count_; }

    /** Sum of resident block sizes in bytes. */
    std::uint64_t residentBytes() const { return resident_bytes_; }

    /** Byte budget governing eviction. */
    std::uint64_t byteBudget() const { return byte_budget_; }

    /**
     * Budget-driven removals since construction or clear(). Repeat
     * references consuming their older entry do not count; this is
     * the "Q was too small to hold the working set" signal exported
     * through the metrics registry.
     */
    std::uint64_t evictionCount() const { return evictions_; }

    /**
     * Process the next trace reference per the Section 3 recipe.
     *
     * If @p id was resident, @p between is filled with every block
     * strictly between the previous reference and the new one (trace
     * order) and the previous entry is removed; otherwise @p between is
     * emptied and the queue is trimmed from the oldest end per the byte
     * budget. In both cases @p id is then appended as most recent.
     *
     * @param id      Referenced block.
     * @param between Output: blocks between consecutive references.
     * @return True when a previous reference existed (i.e. the caller
     *         should credit TRG edges for @p between).
     */
    bool reference(BlockId id, std::vector<BlockId> &between);

    /**
     * State-only reference: identical queue transition to reference()
     * — consume-and-reappend or append-and-trim — without collecting
     * the between list. O(1); the shard planner replays the whole
     * trace through this to capture exact boundary states.
     */
    void touch(BlockId id);

    /**
     * Replace the contents with @p blocks (oldest first), as captured
     * by contents() on another queue. No trimming is applied and the
     * eviction counter is reset: the loaded state is trusted to be a
     * reachable serial state, which may legitimately sit above the
     * byte budget. Used to seed shard-local queues at boundaries.
     */
    void loadState(const std::vector<BlockId> &blocks);

    /** Resident ids from oldest to newest (for tests/diagnostics). */
    std::vector<BlockId> contents() const;

    /** Remove everything. */
    void clear();

  private:
    void detach(BlockId id);
    void append(BlockId id);
    void trim();

    std::vector<std::uint32_t> sizes_;
    std::uint64_t byte_budget_;
    std::vector<BlockId> prev_;
    std::vector<BlockId> next_;
    /**
     * One byte per block id instead of std::vector<bool>: the
     * membership test sits on the per-reference path of every TRG /
     * pair-database walk, and a plain byte load avoids the proxy
     * object and shift/mask of the packed-bit specialisation
     * (measured in bench/perf_microbench BM_TemporalQueueWalk).
     */
    std::vector<std::uint8_t> resident_;
    BlockId head_ = kNone;
    BlockId tail_ = kNone;
    std::size_t count_ = 0;
    std::uint64_t resident_bytes_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace topo

#endif // TOPO_PROFILE_TEMPORAL_QUEUE_HH
