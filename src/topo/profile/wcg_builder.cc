#include "topo/profile/wcg_builder.hh"

#include <algorithm>
#include <vector>

#include "topo/exec/exec.hh"
#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Shards below this many events are not worth the fan-out. */
constexpr std::size_t kMinEventsPerShard = 8192;

/** Transition counts over events [begin, end), seeded with @p last. */
void
countTransitions(const std::vector<TraceEvent> &events, std::size_t begin,
                 std::size_t end, ProcId last, WeightedGraph &wcg)
{
    for (std::size_t i = begin; i < end; ++i) {
        const ProcId proc = events[i].proc;
        if (last != kInvalidProc && proc != last)
            wcg.addWeight(last, proc, 1.0);
        last = proc;
    }
}

} // namespace

WeightedGraph
buildWcg(const Program &program, const Trace &trace)
{
    require(trace.procCount() == program.procCount(),
            "buildWcg: program/trace mismatch");
    PhaseTimer timer("wcg_build");
    WeightedGraph wcg(program.procCount());
    const std::vector<TraceEvent> &events = trace.events();
    const std::size_t jobs = static_cast<std::size_t>(execJobs());
    const std::size_t shard_count =
        std::min(jobs, events.size() / kMinEventsPerShard);
    if (shard_count <= 1) {
        countTransitions(events, 0, events.size(), kInvalidProc, wcg);
    } else {
        std::vector<WeightedGraph> shards(
            shard_count, WeightedGraph(program.procCount()));
        parallelFor(shard_count, [&](std::size_t s) {
            const std::size_t begin = s * events.size() / shard_count;
            const std::size_t end =
                (s + 1) * events.size() / shard_count;
            const ProcId last =
                begin ? events[begin - 1].proc : kInvalidProc;
            countTransitions(events, begin, end, last, shards[s]);
        });
        for (const WeightedGraph &shard : shards)
            wcg.addGraph(shard);
    }

    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("wcg.builds").add();
    metrics.counter("wcg.events").add(trace.size());
    metrics.counter("wcg.edges").add(wcg.edgeCount());
    if (logEnabled(LogLevel::kDebug)) {
        logDebug("wcg", "built WCG",
                 {{"events", trace.size()},
                  {"edges", wcg.edgeCount()},
                  {"ms", timer.elapsedMs()}});
    }
    return wcg;
}

} // namespace topo
