#include "topo/profile/wcg_builder.hh"

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/util/error.hh"

namespace topo
{

WeightedGraph
buildWcg(const Program &program, const Trace &trace)
{
    require(trace.procCount() == program.procCount(),
            "buildWcg: program/trace mismatch");
    PhaseTimer timer("wcg_build");
    WeightedGraph wcg(program.procCount());
    ProcId last = kInvalidProc;
    for (const TraceEvent &ev : trace.events()) {
        if (last != kInvalidProc && ev.proc != last)
            wcg.addWeight(last, ev.proc, 1.0);
        last = ev.proc;
    }

    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.counter("wcg.builds").add();
    metrics.counter("wcg.events").add(trace.size());
    metrics.counter("wcg.edges").add(wcg.edgeCount());
    if (logEnabled(LogLevel::kDebug)) {
        logDebug("wcg", "built WCG",
                 {{"events", trace.size()},
                  {"edges", wcg.edgeCount()},
                  {"ms", timer.elapsedMs()}});
    }
    return wcg;
}

} // namespace topo
