#include "topo/profile/wcg_builder.hh"

#include "topo/util/error.hh"

namespace topo
{

WeightedGraph
buildWcg(const Program &program, const Trace &trace)
{
    require(trace.procCount() == program.procCount(),
            "buildWcg: program/trace mismatch");
    WeightedGraph wcg(program.procCount());
    ProcId last = kInvalidProc;
    for (const TraceEvent &ev : trace.events()) {
        if (last != kInvalidProc && ev.proc != last)
            wcg.addWeight(last, ev.proc, 1.0);
        last = ev.proc;
    }
    return wcg;
}

} // namespace topo
