/**
 * @file
 * Weighted call graph construction (Section 2).
 *
 * Following the paper's PH implementation, the edge weight W(p,q) is
 * the total number of control-flow transitions between procedures p
 * and q in the trace — each call/return boundary between consecutive
 * runs of different procedures counts one transition. This is exactly
 * twice a classic WCG's call count, which does not change the
 * placement produced by PH.
 */

#ifndef TOPO_PROFILE_WCG_BUILDER_HH
#define TOPO_PROFILE_WCG_BUILDER_HH

#include "topo/profile/weighted_graph.hh"
#include "topo/trace/trace.hh"

namespace topo
{

/**
 * Build the undirected transition-count graph from a trace.
 *
 * With execJobs() > 1 and a large enough trace the build shards: each
 * shard counts transitions over its event range seeded with the
 * procedure of the event preceding the range, and the per-shard graphs
 * are summed in shard order (WeightedGraph::addGraph — the merge law;
 * weights are integer counts, so the sum is exact and bit-identical
 * to the serial walk).
 *
 * @param program Procedure inventory (node count).
 * @param trace   The profiling trace.
 */
WeightedGraph buildWcg(const Program &program, const Trace &trace);

} // namespace topo

#endif // TOPO_PROFILE_WCG_BUILDER_HH
