/**
 * @file
 * ChunkMap: the statically-determined procedure chunks of Section 4.1.
 *
 * TRG_place records temporal relationships at a granularity finer than
 * whole procedures so that procedures larger than the cache can still
 * be aligned profitably. A ChunkMap slices every procedure into fixed
 * size chunks (the paper found 256 bytes to work well) and provides the
 * bidirectional id mapping used by the TRG builder and merge_nodes.
 */

#ifndef TOPO_PROFILE_CHUNK_MAP_HH
#define TOPO_PROFILE_CHUNK_MAP_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"
#include "topo/profile/weighted_graph.hh"

namespace topo
{

/** Global chunk id (dense across all procedures). */
using ChunkId = BlockId;

/** Static chunking of a program at a fixed chunk size. */
class ChunkMap
{
  public:
    /** Default chunk size from the paper (Section 4.1). */
    static constexpr std::uint32_t kDefaultChunkBytes = 256;

    /**
     * Build the chunk map.
     *
     * @param program     Procedure inventory.
     * @param chunk_bytes Chunk size; must be non-zero.
     */
    ChunkMap(const Program &program,
             std::uint32_t chunk_bytes = kDefaultChunkBytes);

    /** Chunk size in bytes. */
    std::uint32_t chunkBytes() const { return chunk_bytes_; }

    /** Total number of chunks across all procedures. */
    std::size_t chunkCount() const { return chunk_proc_.size(); }

    /** Number of chunks of one procedure: ceil(size / chunk_bytes). */
    std::uint32_t chunksOf(ProcId proc) const;

    /** Global id of chunk @p index of procedure @p proc. */
    ChunkId chunkId(ProcId proc, std::uint32_t index) const;

    /** Procedure owning a chunk. */
    ProcId procOf(ChunkId chunk) const;

    /** Index of a chunk within its procedure. */
    std::uint32_t indexOf(ChunkId chunk) const;

    /**
     * Byte size of a chunk: chunk_bytes except possibly for the last
     * chunk of a procedure.
     */
    std::uint32_t chunkSizeBytes(ChunkId chunk) const;

    /**
     * Chunk containing byte @p offset of procedure @p proc.
     */
    ChunkId chunkAt(ProcId proc, std::uint32_t offset) const;

    /**
     * Chunk covering cache line @p line_in_proc of a procedure laid out
     * from its start, for line size @p line_bytes. Used by merge_nodes
     * to identify which chunk occupies each cache line.
     */
    ChunkId chunkAtLine(ProcId proc, std::uint32_t line_in_proc,
                        std::uint32_t line_bytes) const;

  private:
    std::uint32_t chunk_bytes_;
    std::vector<ChunkId> first_chunk_;     // per procedure
    std::vector<ProcId> chunk_proc_;       // per chunk
    std::vector<std::uint32_t> chunk_size_; // per chunk, bytes
};

} // namespace topo

#endif // TOPO_PROFILE_CHUNK_MAP_HH
