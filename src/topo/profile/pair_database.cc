#include "topo/profile/pair_database.hh"

#include <algorithm>

#include "topo/exec/exec.hh"
#include "topo/profile/temporal_queue.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/util/error.hh"

namespace topo
{

std::uint64_t
PairDatabase::key(BlockId p, BlockId r, BlockId s)
{
    require(p != r && p != s && r != s, "PairDatabase: ids must be distinct");
    require(p < (1u << 21) && r < (1u << 21) && s < (1u << 21),
            "PairDatabase: block id exceeds 21 bits");
    const BlockId lo = std::min(r, s);
    const BlockId hi = std::max(r, s);
    return (static_cast<std::uint64_t>(p) << 42) |
           (static_cast<std::uint64_t>(lo) << 21) |
           static_cast<std::uint64_t>(hi);
}

void
PairDatabase::add(BlockId p, BlockId r, BlockId s, double w)
{
    table_[key(p, r, s)] += w;
}

double
PairDatabase::get(BlockId p, BlockId r, BlockId s) const
{
    return table_.get(key(p, r, s), 0.0);
}

void
PairDatabase::merge(const PairDatabase &other)
{
    require(&other != this, "PairDatabase::merge: self merge");
    other.table_.forEach([this](std::uint64_t packed, double weight) {
        table_[packed] += weight;
    });
}

void
PairDatabase::prune(double min_weight)
{
    table_.filter([min_weight](std::uint64_t, double weight) {
        return weight >= min_weight;
    });
}

std::vector<PairDatabase::Entry>
PairDatabase::entries() const
{
    std::vector<Entry> out;
    out.reserve(table_.size());
    table_.forEach([&out](std::uint64_t packed, double weight) {
        Entry e;
        e.p = static_cast<BlockId>(packed >> 42);
        e.r = static_cast<BlockId>((packed >> 21) & ((1u << 21) - 1));
        e.s = static_cast<BlockId>(packed & ((1u << 21) - 1));
        e.weight = weight;
        out.push_back(e);
    });
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        if (a.p != b.p)
            return a.p < b.p;
        if (a.r != b.r)
            return a.r < b.r;
        return a.s < b.s;
    });
    return out;
}

namespace
{

/** Shards below this many events are not worth the fan-out. */
constexpr std::size_t kMinEventsPerShard = 8192;

std::vector<std::uint32_t>
procSizesOf(const Program &program)
{
    std::vector<std::uint32_t> sizes(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i)
        sizes[i] = program.proc(static_cast<ProcId>(i)).size_bytes;
    return sizes;
}

/**
 * The Section 6 walk over events [begin, end), with the queue and the
 * run-dedup state seeded to the serial walk's state at @p begin.
 */
void
collectPairs(const Program &program, const Trace &trace,
             const PairBuildOptions &options, std::size_t begin,
             std::size_t end, const std::vector<BlockId> &queue_seed,
             ProcId last, PairDatabase &db)
{
    TemporalQueue q(procSizesOf(program), options.byte_budget);
    q.loadState(queue_seed);
    std::vector<BlockId> between;
    const std::vector<TraceEvent> &events = trace.events();
    for (std::size_t n = begin; n < end; ++n) {
        const TraceEvent &ev = events[n];
        if (options.popular && !(*options.popular)[ev.proc])
            continue;
        if (ev.proc == last)
            continue;
        last = ev.proc;
        if (!q.reference(ev.proc, between))
            continue;
        // Keep only the most recent pair_window distinct blocks; those
        // are nearest the new reference and most likely still resident.
        const std::size_t count =
            std::min<std::size_t>(between.size(), options.pair_window);
        const std::size_t start = between.size() - count;
        for (std::size_t i = start; i < between.size(); ++i) {
            for (std::size_t j = i + 1; j < between.size(); ++j)
                db.add(ev.proc, between[i], between[j], 1.0);
        }
    }
}

} // namespace

PairDatabase
buildPairDatabase(const Program &program, const Trace &trace,
                  const PairBuildOptions &options)
{
    require(trace.procCount() == program.procCount(),
            "buildPairDatabase: program/trace mismatch");
    require(options.pair_window >= 2,
            "buildPairDatabase: pair window must be at least 2");

    const std::size_t jobs = static_cast<std::size_t>(execJobs());
    const std::size_t shard_count =
        std::min(jobs, trace.size() / kMinEventsPerShard);
    PairDatabase db;
    if (shard_count <= 1) {
        collectPairs(program, trace, options, 0, trace.size(), {},
                     kInvalidProc, db);
        return db;
    }

    // Reuse the TRG shard planner at procedure granularity; this walk
    // has the same popularity filter, run dedup, and queue budget.
    TrgBuildOptions plan_options;
    plan_options.byte_budget = options.byte_budget;
    plan_options.build_select = true;
    plan_options.build_place = false;
    plan_options.popular = options.popular;
    const ChunkMap plan_chunks(program);
    const std::vector<TraceShard> shards = planTraceShards(
        program, plan_chunks, trace, plan_options, shard_count);

    std::vector<PairDatabase> shard_dbs(shards.size());
    parallelFor(shards.size(), [&](std::size_t s) {
        collectPairs(program, trace, options, shards[s].begin,
                     shards[s].end, shards[s].proc_queue,
                     shards[s].last_proc, shard_dbs[s]);
    });
    for (PairDatabase &shard_db : shard_dbs)
        db.merge(shard_db);
    return db;
}

} // namespace topo
