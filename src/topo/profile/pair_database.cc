#include "topo/profile/pair_database.hh"

#include <algorithm>

#include "topo/profile/temporal_queue.hh"
#include "topo/util/error.hh"

namespace topo
{

std::uint64_t
PairDatabase::key(BlockId p, BlockId r, BlockId s)
{
    require(p != r && p != s && r != s, "PairDatabase: ids must be distinct");
    require(p < (1u << 21) && r < (1u << 21) && s < (1u << 21),
            "PairDatabase: block id exceeds 21 bits");
    const BlockId lo = std::min(r, s);
    const BlockId hi = std::max(r, s);
    return (static_cast<std::uint64_t>(p) << 42) |
           (static_cast<std::uint64_t>(lo) << 21) |
           static_cast<std::uint64_t>(hi);
}

void
PairDatabase::add(BlockId p, BlockId r, BlockId s, double w)
{
    table_[key(p, r, s)] += w;
}

double
PairDatabase::get(BlockId p, BlockId r, BlockId s) const
{
    auto it = table_.find(key(p, r, s));
    return it == table_.end() ? 0.0 : it->second;
}

void
PairDatabase::prune(double min_weight)
{
    for (auto it = table_.begin(); it != table_.end();) {
        if (it->second < min_weight)
            it = table_.erase(it);
        else
            ++it;
    }
}

std::vector<PairDatabase::Entry>
PairDatabase::entries() const
{
    std::vector<Entry> out;
    out.reserve(table_.size());
    for (const auto &[packed, weight] : table_) {
        Entry e;
        e.p = static_cast<BlockId>(packed >> 42);
        e.r = static_cast<BlockId>((packed >> 21) & ((1u << 21) - 1));
        e.s = static_cast<BlockId>(packed & ((1u << 21) - 1));
        e.weight = weight;
        out.push_back(e);
    }
    return out;
}

PairDatabase
buildPairDatabase(const Program &program, const Trace &trace,
                  const PairBuildOptions &options)
{
    require(trace.procCount() == program.procCount(),
            "buildPairDatabase: program/trace mismatch");
    require(options.pair_window >= 2,
            "buildPairDatabase: pair window must be at least 2");

    std::vector<std::uint32_t> sizes(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i)
        sizes[i] = program.proc(static_cast<ProcId>(i)).size_bytes;
    TemporalQueue q(std::move(sizes), options.byte_budget);

    PairDatabase db;
    std::vector<BlockId> between;
    ProcId last = kInvalidProc;
    for (const TraceEvent &ev : trace.events()) {
        if (options.popular && !(*options.popular)[ev.proc])
            continue;
        if (ev.proc == last)
            continue;
        last = ev.proc;
        if (!q.reference(ev.proc, between))
            continue;
        // Keep only the most recent pair_window distinct blocks; those
        // are nearest the new reference and most likely still resident.
        const std::size_t count =
            std::min<std::size_t>(between.size(), options.pair_window);
        const std::size_t start = between.size() - count;
        for (std::size_t i = start; i < between.size(); ++i) {
            for (std::size_t j = i + 1; j < between.size(); ++j)
                db.add(ev.proc, between[i], between[j], 1.0);
        }
    }
    return db;
}

} // namespace topo
