#include "topo/profile/weighted_graph.hh"

#include <algorithm>
#include <utility>

#include "topo/util/error.hh"

namespace topo
{

WeightedGraph::WeightedGraph(std::size_t node_count)
    : adjacency_(node_count)
{
}

void
WeightedGraph::checkNode(BlockId id) const
{
    require(id < adjacency_.size(), "WeightedGraph: node id out of range");
}

void
WeightedGraph::addWeight(BlockId u, BlockId v, double w)
{
    checkNode(u);
    checkNode(v);
    require(u != v, "WeightedGraph::addWeight: self edge");
    auto [it_u, inserted] = adjacency_[u].try_emplace(v, 0.0);
    it_u->second += w;
    adjacency_[v][u] = it_u->second;
    if (inserted)
        ++edge_count_;
}

void
WeightedGraph::setWeight(BlockId u, BlockId v, double w)
{
    checkNode(u);
    checkNode(v);
    require(u != v, "WeightedGraph::setWeight: self edge");
    auto it = adjacency_[u].find(v);
    require(it != adjacency_[u].end(),
            "WeightedGraph::setWeight: edge does not exist");
    it->second = w;
    adjacency_[v][u] = w;
}

double
WeightedGraph::weight(BlockId u, BlockId v) const
{
    checkNode(u);
    checkNode(v);
    auto it = adjacency_[u].find(v);
    return it == adjacency_[u].end() ? 0.0 : it->second;
}

bool
WeightedGraph::hasEdge(BlockId u, BlockId v) const
{
    checkNode(u);
    checkNode(v);
    return adjacency_[u].find(v) != adjacency_[u].end();
}

const std::unordered_map<BlockId, double> &
WeightedGraph::neighbors(BlockId u) const
{
    checkNode(u);
    return adjacency_[u];
}

std::vector<std::pair<BlockId, double>>
WeightedGraph::sortedNeighbors(BlockId u) const
{
    checkNode(u);
    std::vector<std::pair<BlockId, double>> out(adjacency_[u].begin(),
                                                adjacency_[u].end());
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

std::vector<WeightedGraph::Edge>
WeightedGraph::edges() const
{
    std::vector<Edge> all;
    all.reserve(edge_count_);
    for (std::size_t u = 0; u < adjacency_.size(); ++u) {
        for (const auto &[v, w] : adjacency_[u]) {
            if (static_cast<BlockId>(u) < v)
                all.push_back(Edge{static_cast<BlockId>(u), v, w});
        }
    }
    std::sort(all.begin(), all.end(), [](const Edge &a, const Edge &b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
    return all;
}

void
WeightedGraph::addGraph(const WeightedGraph &other, double factor)
{
    require(other.nodeCount() == nodeCount(),
            "WeightedGraph::addGraph: node count mismatch");
    for (const Edge &e : other.edges())
        addWeight(e.u, e.v, e.weight * factor);
}

double
WeightedGraph::totalWeight() const
{
    double total = 0.0;
    for (std::size_t u = 0; u < adjacency_.size(); ++u) {
        for (const auto &[v, w] : adjacency_[u]) {
            if (static_cast<BlockId>(u) < v)
                total += w;
        }
    }
    return total;
}

} // namespace topo
