#include "topo/profile/weighted_graph.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "topo/util/error.hh"

namespace topo
{

/**
 * CSR snapshot: entries holds every node's neighbor row back to back,
 * sorted by neighbor id within a row; offsets[u] .. offsets[u+1]
 * delimit node u's row. Each undirected edge appears in both endpoint
 * rows with the same weight.
 */
struct WeightedGraph::Csr
{
    std::vector<std::size_t> offsets;
    std::vector<std::pair<BlockId, double>> entries;
};

WeightedGraph::WeightedGraph(std::size_t node_count)
    : node_count_(node_count)
{
}

WeightedGraph::WeightedGraph(const WeightedGraph &other)
    : node_count_(other.node_count_), edges_(other.edges_)
{
}

WeightedGraph &
WeightedGraph::operator=(const WeightedGraph &other)
{
    if (this != &other) {
        invalidate();
        node_count_ = other.node_count_;
        edges_ = other.edges_;
    }
    return *this;
}

WeightedGraph::WeightedGraph(WeightedGraph &&other) noexcept
    : node_count_(other.node_count_), edges_(std::move(other.edges_)),
      csr_(other.csr_.exchange(nullptr, std::memory_order_acq_rel))
{
    other.node_count_ = 0;
}

WeightedGraph &
WeightedGraph::operator=(WeightedGraph &&other) noexcept
{
    if (this != &other) {
        invalidate();
        node_count_ = other.node_count_;
        edges_ = std::move(other.edges_);
        csr_.store(other.csr_.exchange(nullptr,
                                       std::memory_order_acq_rel),
                   std::memory_order_release);
        other.node_count_ = 0;
    }
    return *this;
}

WeightedGraph::~WeightedGraph()
{
    delete csr_.load(std::memory_order_acquire);
}

void
WeightedGraph::checkNode(BlockId id) const
{
    require(id < node_count_, "WeightedGraph: node id out of range");
}

std::uint64_t
WeightedGraph::packEdge(BlockId u, BlockId v)
{
    const BlockId lo = std::min(u, v);
    const BlockId hi = std::max(u, v);
    return (static_cast<std::uint64_t>(lo) << 32) |
           static_cast<std::uint64_t>(hi);
}

void
WeightedGraph::invalidate()
{
    // The accumulation phase calls this per mutation; the common case
    // (no snapshot yet) must stay a plain load.
    if (csr_.load(std::memory_order_relaxed) != nullptr)
        delete csr_.exchange(nullptr, std::memory_order_acq_rel);
}

const WeightedGraph::Csr &
WeightedGraph::frozen() const
{
    const Csr *snapshot = csr_.load(std::memory_order_acquire);
    if (snapshot != nullptr)
        return *snapshot;

    auto built = std::make_unique<Csr>();
    built->offsets.assign(node_count_ + 1, 0);
    edges_.forEach([&](std::uint64_t key, double) {
        ++built->offsets[static_cast<BlockId>(key >> 32) + 1];
        ++built->offsets[static_cast<BlockId>(key) + 1];
    });
    for (std::size_t u = 0; u < node_count_; ++u)
        built->offsets[u + 1] += built->offsets[u];
    built->entries.resize(built->offsets[node_count_]);
    std::vector<std::size_t> cursor(built->offsets.begin(),
                                    built->offsets.end() - 1);
    edges_.forEach([&](std::uint64_t key, double w) {
        const BlockId lo = static_cast<BlockId>(key >> 32);
        const BlockId hi = static_cast<BlockId>(key);
        built->entries[cursor[lo]++] = {hi, w};
        built->entries[cursor[hi]++] = {lo, w};
    });
    for (std::size_t u = 0; u < node_count_; ++u) {
        std::sort(built->entries.begin() +
                      static_cast<std::ptrdiff_t>(built->offsets[u]),
                  built->entries.begin() +
                      static_cast<std::ptrdiff_t>(built->offsets[u + 1]),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
    }

    // Publish; when another thread won the race, keep its snapshot
    // (both are built from the same edge set, so they are identical).
    const Csr *expected = nullptr;
    if (csr_.compare_exchange_strong(expected, built.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return *built.release();
    }
    return *expected;
}

void
WeightedGraph::addWeight(BlockId u, BlockId v, double w)
{
    checkNode(u);
    checkNode(v);
    require(u != v, "WeightedGraph::addWeight: self edge");
    invalidate();
    edges_[packEdge(u, v)] += w;
}

void
WeightedGraph::setWeight(BlockId u, BlockId v, double w)
{
    checkNode(u);
    checkNode(v);
    require(u != v, "WeightedGraph::setWeight: self edge");
    double *entry = edges_.find(packEdge(u, v));
    require(entry != nullptr,
            "WeightedGraph::setWeight: edge does not exist");
    invalidate();
    *entry = w;
}

double
WeightedGraph::weight(BlockId u, BlockId v) const
{
    checkNode(u);
    checkNode(v);
    return edges_.get(packEdge(u, v), 0.0);
}

bool
WeightedGraph::hasEdge(BlockId u, BlockId v) const
{
    checkNode(u);
    checkNode(v);
    return edges_.contains(packEdge(u, v));
}

WeightedGraph::NeighborSpan
WeightedGraph::neighbors(BlockId u) const
{
    checkNode(u);
    const Csr &csr = frozen();
    return NeighborSpan(csr.entries.data() + csr.offsets[u],
                        csr.offsets[u + 1] - csr.offsets[u]);
}

std::vector<WeightedGraph::Edge>
WeightedGraph::edges() const
{
    // CSR rows are sorted by neighbor and visited in node order, so
    // taking the v > u half enumerates edges already sorted by (u, v).
    const Csr &csr = frozen();
    std::vector<Edge> all;
    all.reserve(edges_.size());
    for (std::size_t u = 0; u < node_count_; ++u) {
        for (std::size_t i = csr.offsets[u]; i < csr.offsets[u + 1];
             ++i) {
            const auto &[v, w] = csr.entries[i];
            if (v > static_cast<BlockId>(u))
                all.push_back(Edge{static_cast<BlockId>(u), v, w});
        }
    }
    return all;
}

void
WeightedGraph::addGraph(const WeightedGraph &other, double factor)
{
    require(other.nodeCount() == nodeCount(),
            "WeightedGraph::addGraph: node count mismatch");
    for (const Edge &e : other.edges())
        addWeight(e.u, e.v, e.weight * factor);
}

double
WeightedGraph::totalWeight() const
{
    // Deterministic (u, v)-sorted accumulation order via the CSR.
    const Csr &csr = frozen();
    double total = 0.0;
    for (std::size_t u = 0; u < node_count_; ++u) {
        for (std::size_t i = csr.offsets[u]; i < csr.offsets[u + 1];
             ++i) {
            if (csr.entries[i].first > static_cast<BlockId>(u))
                total += csr.entries[i].second;
        }
    }
    return total;
}

} // namespace topo
