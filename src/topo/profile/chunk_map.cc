#include "topo/profile/chunk_map.hh"

#include <algorithm>

#include "topo/util/error.hh"

namespace topo
{

ChunkMap::ChunkMap(const Program &program, std::uint32_t chunk_bytes)
    : chunk_bytes_(chunk_bytes)
{
    require(chunk_bytes > 0, "ChunkMap: zero chunk size");
    first_chunk_.reserve(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        const auto id = static_cast<ProcId>(i);
        const std::uint32_t size = program.proc(id).size_bytes;
        const std::uint32_t count = (size + chunk_bytes - 1) / chunk_bytes;
        first_chunk_.push_back(static_cast<ChunkId>(chunk_proc_.size()));
        for (std::uint32_t c = 0; c < count; ++c) {
            chunk_proc_.push_back(id);
            const std::uint32_t begin = c * chunk_bytes;
            chunk_size_.push_back(std::min(chunk_bytes, size - begin));
        }
    }
}

std::uint32_t
ChunkMap::chunksOf(ProcId proc) const
{
    require(proc < first_chunk_.size(), "ChunkMap::chunksOf: invalid proc");
    const ChunkId first = first_chunk_[proc];
    const ChunkId next = (proc + 1 < first_chunk_.size())
                             ? first_chunk_[proc + 1]
                             : static_cast<ChunkId>(chunk_proc_.size());
    return next - first;
}

ChunkId
ChunkMap::chunkId(ProcId proc, std::uint32_t index) const
{
    require(index < chunksOf(proc), "ChunkMap::chunkId: index out of range");
    return first_chunk_[proc] + index;
}

ProcId
ChunkMap::procOf(ChunkId chunk) const
{
    require(chunk < chunk_proc_.size(), "ChunkMap::procOf: invalid chunk");
    return chunk_proc_[chunk];
}

std::uint32_t
ChunkMap::indexOf(ChunkId chunk) const
{
    const ProcId proc = procOf(chunk);
    return chunk - first_chunk_[proc];
}

std::uint32_t
ChunkMap::chunkSizeBytes(ChunkId chunk) const
{
    require(chunk < chunk_size_.size(),
            "ChunkMap::chunkSizeBytes: invalid chunk");
    return chunk_size_[chunk];
}

ChunkId
ChunkMap::chunkAt(ProcId proc, std::uint32_t offset) const
{
    const std::uint32_t index = offset / chunk_bytes_;
    return chunkId(proc, index);
}

ChunkId
ChunkMap::chunkAtLine(ProcId proc, std::uint32_t line_in_proc,
                      std::uint32_t line_bytes) const
{
    require(line_bytes > 0, "ChunkMap::chunkAtLine: zero line size");
    // A line wholly inside one chunk when chunk_bytes % line_bytes == 0;
    // otherwise attribute the line to the chunk holding its first byte.
    const std::uint64_t byte =
        static_cast<std::uint64_t>(line_in_proc) * line_bytes;
    return chunkAt(proc, static_cast<std::uint32_t>(byte));
}

} // namespace topo
