#include "topo/profile/collector.hh"

#include "topo/util/error.hh"

namespace topo
{

ProfileCollector::ProfileCollector(const Program &program,
                                   const CollectorOptions &options)
    : program_(program),
      options_(options),
      chunks_(std::make_unique<ChunkMap>(program, options.chunk_bytes)),
      wcg_(0)
{
    TrgBuildOptions trg_options;
    trg_options.byte_budget = options.byte_budget;
    trg_options.build_select = options.build_select;
    trg_options.build_place = options.build_place;
    trg_options.popular = options.popular;
    trgs_ = std::make_unique<TrgAccumulator>(program, *chunks_,
                                             trg_options);
    resetSession();
}

ProfileCollector::~ProfileCollector() = default;

void
ProfileCollector::resetSession()
{
    stats_ = TraceStats{};
    stats_.run_count.assign(program_.procCount(), 0);
    stats_.bytes_fetched.assign(program_.procCount(), 0);
    last_proc_ = kInvalidProc;
    wcg_ = WeightedGraph(options_.build_wcg ? program_.procCount() : 0);
}

void
ProfileCollector::onRun(ProcId proc, std::uint32_t offset,
                        std::uint32_t length)
{
    require(proc < program_.procCount(),
            "ProfileCollector: invalid procedure id");
    require(length > 0, "ProfileCollector: zero-length run");
    require(static_cast<std::uint64_t>(offset) + length <=
                program_.proc(proc).size_bytes,
            "ProfileCollector: run exceeds procedure bounds");

    // Statistics (always full-program).
    if (stats_.run_count[proc] == 0)
        ++stats_.procs_touched;
    ++stats_.run_count[proc];
    stats_.bytes_fetched[proc] += length;
    ++stats_.total_runs;
    stats_.total_bytes += length;

    // WCG: one transition per change of procedure.
    if (options_.build_wcg && last_proc_ != kInvalidProc &&
        last_proc_ != proc) {
        wcg_.addWeight(last_proc_, proc, 1.0);
    }
    last_proc_ = proc;

    // TRGs (respecting the popularity filter internally).
    trgs_->onRun(proc, offset, length);
}

void
ProfileCollector::onProcedure(ProcId proc)
{
    require(proc < program_.procCount(),
            "ProfileCollector: invalid procedure id");
    onRun(proc, 0, program_.proc(proc).size_bytes);
}

void
ProfileCollector::onTrace(const Trace &trace)
{
    require(trace.procCount() == program_.procCount(),
            "ProfileCollector: program/trace mismatch");
    for (const TraceEvent &ev : trace.events())
        onRun(ev.proc, ev.offset, ev.length);
}

CollectedProfile
ProfileCollector::take()
{
    CollectedProfile profile;
    TrgBuildResult trgs = trgs_->take();
    profile.trg_select = std::move(trgs.select);
    profile.trg_place = std::move(trgs.place);
    profile.avg_queue_procs = trgs.avg_queue_procs;
    profile.proc_steps = trgs.proc_steps;
    profile.wcg = std::move(wcg_);
    profile.stats = std::move(stats_);
    resetSession();
    return profile;
}

} // namespace topo
