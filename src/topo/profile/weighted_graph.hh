/**
 * @file
 * Undirected weighted graph over code-block ids.
 *
 * This one data structure represents all three relationship graphs the
 * paper uses: the WCG of Section 2, TRG_select (procedure granularity)
 * and TRG_place (chunk granularity) of Sections 3-4. Weights are
 * doubles because the Section 5.1 perturbation is multiplicative
 * log-normal noise.
 *
 * Storage is split into two phases matching the pipeline:
 *  - accumulation: edges live in one open-addressing FlatMap keyed by
 *    the packed pair (min(u,v) << 32) | max(u,v), so addWeight() is a
 *    single probe instead of two unordered_map operations;
 *  - placement: on first neighbor query the graph freezes into a CSR
 *    (compressed sparse row) snapshot — per-node neighbor rows sorted
 *    by id in one contiguous array — so the placement inner loops
 *    iterate cache-line-sequential memory without hashing or
 *    re-sorting. Mutation invalidates the snapshot; the next query
 *    rebuilds it.
 */

#ifndef TOPO_PROFILE_WEIGHTED_GRAPH_HH
#define TOPO_PROFILE_WEIGHTED_GRAPH_HH

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "topo/util/flat_map.hh"

namespace topo
{

/** Generic code-block identifier (procedure id or global chunk id). */
using BlockId = std::uint32_t;

/** Undirected weighted graph with O(1) expected weight lookup. */
class WeightedGraph
{
  public:
    /** An undirected edge; u < v in enumerations. */
    struct Edge
    {
        BlockId u;
        BlockId v;
        double weight;
    };

    /**
     * A node's neighbors as (id, weight) pairs sorted by id, viewing
     * the frozen CSR snapshot. Valid until the graph is next mutated.
     */
    using NeighborSpan = std::span<const std::pair<BlockId, double>>;

    WeightedGraph() = default;

    /** Construct with a fixed node count. */
    explicit WeightedGraph(std::size_t node_count);

    WeightedGraph(const WeightedGraph &other);
    WeightedGraph &operator=(const WeightedGraph &other);
    WeightedGraph(WeightedGraph &&other) noexcept;
    WeightedGraph &operator=(WeightedGraph &&other) noexcept;
    ~WeightedGraph();

    /** Number of nodes. */
    std::size_t nodeCount() const { return node_count_; }

    /** Number of distinct edges. */
    std::size_t edgeCount() const { return edges_.size(); }

    /**
     * Add @p w to the weight of edge {u, v}; creates the edge when
     * absent. Self-edges are rejected.
     */
    void addWeight(BlockId u, BlockId v, double w);

    /** Overwrite the weight of edge {u, v} (edge must exist). */
    void setWeight(BlockId u, BlockId v, double w);

    /** Weight of edge {u, v}; 0 when the edge does not exist. */
    double weight(BlockId u, BlockId v) const;

    /** True when an edge {u, v} exists. */
    bool hasEdge(BlockId u, BlockId v) const;

    /**
     * Neighbors of @p u sorted by id, served from the frozen CSR
     * snapshot (built on first query after a mutation). The sorted
     * order makes iteration safe for placement decisions and FP
     * accumulation (determinism contract, DESIGN.md §9).
     */
    NeighborSpan neighbors(BlockId u) const;

    /**
     * Alias of neighbors(). Historically this returned a freshly
     * sorted copy per call; the CSR snapshot memoizes that sort, so
     * placement inner loops now get an O(1) contiguous view.
     */
    NeighborSpan sortedNeighbors(BlockId u) const { return neighbors(u); }

    /** All edges with u < v, sorted by (u, v). */
    std::vector<Edge> edges() const;

    /** Sum of all edge weights (each edge counted once). */
    double totalWeight() const;

    /**
     * Element-wise addition of another graph's edges, scaled by
     * @p factor. Node counts must match. This is how profiles from
     * several training inputs are combined (Section 5.1 wishes for
     * "a large enough set of different inputs"; merged profiles are
     * the practical approximation).
     */
    void addGraph(const WeightedGraph &other, double factor = 1.0);

  private:
    /** The frozen sorted-adjacency snapshot (defined in the .cc). */
    struct Csr;

    void checkNode(BlockId id) const;
    static std::uint64_t packEdge(BlockId u, BlockId v);
    const Csr &frozen() const;
    void invalidate();

    std::size_t node_count_ = 0;
    util::FlatMap<std::uint64_t, double> edges_;
    /**
     * Lazily built CSR snapshot, published with a release CAS so
     * concurrent const readers (parallel grid cells sharing one
     * profile) all see one fully built snapshot. Mutators run before
     * the readers in every pipeline and invalidate it.
     */
    mutable std::atomic<const Csr *> csr_{nullptr};
};

} // namespace topo

#endif // TOPO_PROFILE_WEIGHTED_GRAPH_HH
