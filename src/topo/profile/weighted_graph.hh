/**
 * @file
 * Undirected weighted graph over code-block ids.
 *
 * This one data structure represents all three relationship graphs the
 * paper uses: the WCG of Section 2, TRG_select (procedure granularity)
 * and TRG_place (chunk granularity) of Sections 3-4. Weights are
 * doubles because the Section 5.1 perturbation is multiplicative
 * log-normal noise.
 */

#ifndef TOPO_PROFILE_WEIGHTED_GRAPH_HH
#define TOPO_PROFILE_WEIGHTED_GRAPH_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace topo
{

/** Generic code-block identifier (procedure id or global chunk id). */
using BlockId = std::uint32_t;

/** Undirected weighted graph with O(1) expected weight lookup. */
class WeightedGraph
{
  public:
    /** An undirected edge; u < v in enumerations. */
    struct Edge
    {
        BlockId u;
        BlockId v;
        double weight;
    };

    WeightedGraph() = default;

    /** Construct with a fixed node count. */
    explicit WeightedGraph(std::size_t node_count);

    /** Number of nodes. */
    std::size_t nodeCount() const { return adjacency_.size(); }

    /** Number of distinct edges. */
    std::size_t edgeCount() const { return edge_count_; }

    /**
     * Add @p w to the weight of edge {u, v}; creates the edge when
     * absent. Self-edges are rejected.
     */
    void addWeight(BlockId u, BlockId v, double w);

    /** Overwrite the weight of edge {u, v} (edge must exist). */
    void setWeight(BlockId u, BlockId v, double w);

    /** Weight of edge {u, v}; 0 when the edge does not exist. */
    double weight(BlockId u, BlockId v) const;

    /** True when an edge {u, v} exists. */
    bool hasEdge(BlockId u, BlockId v) const;

    /**
     * Neighbors of @p u with edge weights. Hash order — never iterate
     * this into a placement decision or floating-point accumulation;
     * use sortedNeighbors() there (determinism contract, DESIGN.md §9).
     */
    const std::unordered_map<BlockId, double> &neighbors(BlockId u) const;

    /**
     * Neighbors of @p u sorted by neighbor id. Deterministic iteration
     * order for tie-breaking and FP accumulation in the placement
     * algorithms.
     */
    std::vector<std::pair<BlockId, double>> sortedNeighbors(BlockId u) const;

    /** All edges with u < v, sorted by (u, v). */
    std::vector<Edge> edges() const;

    /** Sum of all edge weights (each edge counted once). */
    double totalWeight() const;

    /**
     * Element-wise addition of another graph's edges, scaled by
     * @p factor. Node counts must match. This is how profiles from
     * several training inputs are combined (Section 5.1 wishes for
     * "a large enough set of different inputs"; merged profiles are
     * the practical approximation).
     */
    void addGraph(const WeightedGraph &other, double factor = 1.0);

  private:
    void checkNode(BlockId id) const;

    std::vector<std::unordered_map<BlockId, double>> adjacency_;
    std::size_t edge_count_ = 0;
};

} // namespace topo

#endif // TOPO_PROFILE_WEIGHTED_GRAPH_HH
