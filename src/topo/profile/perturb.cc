#include "topo/profile/perturb.hh"

#include <algorithm>
#include <cmath>

#include "topo/util/error.hh"

namespace topo
{

WeightedGraph
perturb(const WeightedGraph &graph, double scale, Rng &rng)
{
    require(scale >= 0.0, "perturb: negative scale");
    WeightedGraph noisy(graph.nodeCount());
    // Sort edges so the noise assignment is independent of hash-map
    // iteration order; experiments stay bit-reproducible everywhere.
    std::vector<WeightedGraph::Edge> edges = graph.edges();
    std::sort(edges.begin(), edges.end(),
              [](const WeightedGraph::Edge &a, const WeightedGraph::Edge &b) {
                  return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    for (const WeightedGraph::Edge &e : edges) {
        const double factor =
            (scale == 0.0) ? 1.0 : std::exp(scale * rng.nextGaussian());
        noisy.addWeight(e.u, e.v, e.weight * factor);
    }
    return noisy;
}

} // namespace topo
