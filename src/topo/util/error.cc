#include "topo/util/error.hh"

namespace topo
{

void
fail(const std::string &msg)
{
    throw TopoError(msg);
}

void
failCorrupt(const std::string &msg, const std::string &context)
{
    throw TopoError(msg, ErrCode::kCorrupt, context);
}

void
failInternal(const std::string &msg, const std::string &context)
{
    throw TopoError(msg, ErrCode::kInternal, context);
}

} // namespace topo
