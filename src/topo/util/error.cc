#include "topo/util/error.hh"

namespace topo
{

void
fail(const std::string &msg)
{
    throw TopoError(msg);
}

} // namespace topo
