/**
 * @file
 * Minimal command-line/environment option handling for bench and
 * example binaries.
 *
 * Options are given as --name=value pairs. Every option can also be
 * supplied through the environment as TOPO_<NAME> (upper-cased, dashes
 * replaced with underscores); the command line wins on conflict. This
 * is how TOPO_TRACE_SCALE from DESIGN.md reaches the bench binaries.
 */

#ifndef TOPO_UTIL_OPTIONS_HH
#define TOPO_UTIL_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace topo
{

/** Parsed option set with typed, defaulted accessors. */
class Options
{
  public:
    Options() = default;

    /**
     * Parse argv. Unknown positional arguments raise TopoError so typos
     * are caught; "--help" is collected and queryable via helpRequested.
     */
    static Options parse(int argc, const char *const *argv);

    /** True if --help (or -h) was present. */
    bool helpRequested() const { return help_; }

    /** True if the option was given on the command line or environment. */
    bool has(const std::string &name) const;

    /** String option with default. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** Integer option with default; throws TopoError on malformed value. */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;

    /** Double option with default; throws TopoError on malformed value. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean option with default; accepts 0/1/true/false/yes/no. */
    bool getBool(const std::string &name, bool fallback) const;

    /** Inject a value programmatically (used by tests). */
    void set(const std::string &name, const std::string &value);

    /**
     * Reject command-line options outside @p known (environment
     * fallbacks are exempt). Throws a user-error TopoError naming the
     * first unknown option, with a "did you mean --x" hint when a
     * known name is within edit distance 3. Tools call this right
     * after parse() so typos fail with exit code 1 instead of being
     * silently ignored.
     */
    void rejectUnknown(const std::vector<std::string> &known) const;

  private:
    /** Fetch raw value from CLI map or environment; empty if absent. */
    bool lookup(const std::string &name, std::string &out) const;

    std::map<std::string, std::string> values_;
    bool help_ = false;
};

} // namespace topo

#endif // TOPO_UTIL_OPTIONS_HH
