#include "topo/util/sysinfo.hh"

#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace topo
{

std::uint64_t
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes.
    return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
#else
    return 0;
#endif
}

namespace
{

std::string
formatUtc(const char *format)
{
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
#if defined(_WIN32)
    gmtime_s(&tm_utc, &now);
#else
    gmtime_r(&now, &tm_utc);
#endif
    char buffer[32];
    const std::size_t len =
        std::strftime(buffer, sizeof(buffer), format, &tm_utc);
    return std::string(buffer, len);
}

} // namespace

std::string
utcTimestamp()
{
    return formatUtc("%Y-%m-%dT%H:%M:%SZ");
}

std::string
utcDateCompact()
{
    return formatUtc("%Y%m%d");
}

} // namespace topo
