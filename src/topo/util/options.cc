#include "topo/util/options.hh"

#include <cctype>
#include <cstdlib>

#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"

namespace topo
{

Options
Options::parse(int argc, const char *const *argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            opts.help_ = true;
            continue;
        }
        if (arg.rfind("--", 0) != 0) {
            fail("Options::parse: unexpected positional argument '" + arg +
                 "'");
        }
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos) {
            // Bare flag means boolean true.
            opts.values_[arg.substr(2)] = "1";
        } else {
            opts.values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
    }
    return opts;
}

bool
Options::lookup(const std::string &name, std::string &out) const
{
    auto it = values_.find(name);
    if (it != values_.end()) {
        out = it->second;
        return true;
    }
    std::string env_name = "TOPO_";
    for (char ch : name) {
        env_name += (ch == '-') ? '_'
                                : static_cast<char>(std::toupper(
                                      static_cast<unsigned char>(ch)));
    }
    if (const char *env = std::getenv(env_name.c_str())) {
        out = env;
        return true;
    }
    return false;
}

bool
Options::has(const std::string &name) const
{
    std::string ignored;
    return lookup(name, ignored);
}

std::string
Options::getString(const std::string &name, const std::string &fallback) const
{
    std::string value;
    return lookup(name, value) ? value : fallback;
}

std::int64_t
Options::getInt(const std::string &name, std::int64_t fallback) const
{
    std::string value;
    if (!lookup(name, value))
        return fallback;
    return parseInt(value, "option --" + name);
}

double
Options::getDouble(const std::string &name, double fallback) const
{
    std::string value;
    if (!lookup(name, value))
        return fallback;
    return parseDouble(value, "option --" + name);
}

bool
Options::getBool(const std::string &name, bool fallback) const
{
    std::string value;
    if (!lookup(name, value))
        return fallback;
    if (value == "1" || value == "true" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "no")
        return false;
    fail("option --" + name + ": expected boolean, got '" + value + "'");
}

void
Options::set(const std::string &name, const std::string &value)
{
    values_[name] = value;
}

void
Options::rejectUnknown(const std::vector<std::string> &known) const
{
    for (const auto &[name, value] : values_) {
        bool found = false;
        for (const std::string &k : known) {
            if (name == k) {
                found = true;
                break;
            }
        }
        if (found)
            continue;
        std::string hint;
        std::size_t best = 4; // suggest only within edit distance 3
        for (const std::string &k : known) {
            const std::size_t d = editDistance(name, k);
            if (d < best) {
                best = d;
                hint = k;
            }
        }
        std::string msg = "unknown option '--" + name + "'";
        if (!hint.empty())
            msg += " (did you mean '--" + hint + "'?)";
        fail(msg);
    }
}

} // namespace topo
