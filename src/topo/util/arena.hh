/**
 * @file
 * Arena: a reusable bump allocator for per-replay scratch tables.
 *
 * Hot loops that need a scratch array per invocation (the simulator's
 * per-layout line-address table, notably) would otherwise allocate and
 * free on every call — tens of allocations per grid cell, defeating
 * the "steady-state replay is allocation-free" budget asserted by the
 * allocation-hook tests. An Arena keeps one grow-only byte buffer;
 * reset() rewinds it for reuse without releasing memory, so after the
 * first (largest) replay every later replay allocates nothing.
 *
 * Restrictions: alloc() returns uninitialised storage for trivially
 * destructible element types only, and every span is invalidated by
 * the next reset() or by an alloc() that grows the buffer. Intended
 * use is one frame of scratch per reset() cycle, typically through a
 * thread_local instance.
 */

#ifndef TOPO_UTIL_ARENA_HH
#define TOPO_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace topo
{
namespace util
{

/** Grow-only bump allocator; see the file comment for the contract. */
class Arena
{
  public:
    /**
     * Allocate an uninitialised span of @p count elements, aligned
     * for T. Grows the underlying buffer when needed (invalidating
     * earlier spans from this cycle — allocate the largest table
     * first, or reserve() up front).
     */
    template <typename T>
    std::span<T>
    alloc(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena never runs destructors");
        const std::size_t align = alignof(T);
        std::size_t at = (used_ + align - 1) & ~(align - 1);
        const std::size_t bytes = count * sizeof(T);
        if (at + bytes > buffer_.size()) {
            buffer_.resize(at + bytes);
        }
        used_ = at + bytes;
        return std::span<T>(reinterpret_cast<T *>(buffer_.data() + at),
                            count);
    }

    /** Rewind for the next cycle; capacity is retained. */
    void reset() { used_ = 0; }

    /** Bytes currently handed out this cycle. */
    std::size_t usedBytes() const { return used_; }

    /** Bytes held by the underlying buffer. */
    std::size_t capacityBytes() const { return buffer_.size(); }

  private:
    std::vector<std::byte> buffer_;
    std::size_t used_ = 0;
};

} // namespace util
} // namespace topo

#endif // TOPO_UTIL_ARENA_HH
