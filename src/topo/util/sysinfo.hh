/**
 * @file
 * Small process/system introspection helpers for the bench harness:
 * peak resident set size and UTC timestamps for BENCH_*.json records.
 */

#ifndef TOPO_UTIL_SYSINFO_HH
#define TOPO_UTIL_SYSINFO_HH

#include <cstdint>
#include <string>

namespace topo
{

/**
 * Peak resident set size of this process in kilobytes; 0 when the
 * platform does not expose it.
 */
std::uint64_t peakRssKb();

/** Current UTC time as "YYYY-MM-DDTHH:MM:SSZ". */
std::string utcTimestamp();

/** Current UTC date as "YYYYMMDD" (BENCH_<date>.json naming). */
std::string utcDateCompact();

} // namespace topo

#endif // TOPO_UTIL_SYSINFO_HH
