#include "topo/util/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "topo/util/error.hh"

namespace topo
{

RunningStats::RunningStats()
{
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
RunningStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(const std::vector<double> &samples, double pct)
{
    require(!samples.empty(), "percentile: empty sample");
    require(pct >= 0.0 && pct <= 100.0, "percentile: pct out of [0,100]");
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double total = 0.0;
    for (double x : samples)
        total += x;
    return total / static_cast<double>(samples.size());
}

double
sampleStddev(const std::vector<double> &samples)
{
    if (samples.size() < 2)
        return 0.0;
    const double m = mean(samples);
    double ss = 0.0;
    for (double x : samples)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(samples.size() - 1));
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    require(xs.size() == ys.size(), "pearson: length mismatch");
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

LinearFit
leastSquares(const std::vector<double> &xs, const std::vector<double> &ys)
{
    require(xs.size() == ys.size() && !xs.empty(),
            "leastSquares: need equal, non-empty samples");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    LinearFit fit;
    if (sxx == 0.0) {
        fit.offset = my;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.offset = my - fit.slope * mx;
    fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

std::vector<std::pair<double, double>>
empiricalCdf(const std::vector<double> &samples)
{
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::pair<double, double>> cdf;
    cdf.reserve(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double frac =
            static_cast<double>(i + 1) / static_cast<double>(sorted.size());
        cdf.emplace_back(sorted[i], frac);
    }
    return cdf;
}

} // namespace topo
