/**
 * @file
 * FlatMap: open-addressing hash map for the profiling hot path.
 *
 * The TRG/WCG accumulators and the Section 6 pair database perform
 * hundreds of millions of insert-or-add operations per trace; node
 * chasing through std::unordered_map buckets dominates that cost. This
 * map stores slots in one contiguous array with linear probing over a
 * power-of-two capacity, an occupancy byte per slot, and a splitmix64
 * finalizer to spread the packed integer keys the callers use.
 *
 * Deliberate restrictions keep it simple and fast:
 *  - keys are trivially copyable integers (packed edge/pair keys);
 *  - no per-entry deletion — pruning rebuilds the table through
 *    filter(), so there are no tombstones and probe chains never rot;
 *  - iteration is in slot order, which is a pure function of the
 *    insertion sequence. It is deterministic run-to-run but NOT sorted;
 *    consumers that feed placement decisions or FP accumulation must
 *    sort, exactly as they did with the hash-order containers
 *    (determinism contract, DESIGN.md §9).
 */

#ifndef TOPO_UTIL_FLAT_MAP_HH
#define TOPO_UTIL_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace topo
{
namespace util
{

/** splitmix64 finalizer: full-avalanche mixing for packed keys. */
inline std::uint64_t
mixKey(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Open-addressing insert-or-update map from an integer key to a value.
 *
 * @tparam Key   Trivially copyable integer key type.
 * @tparam Value Mapped type; must be default-constructible (operator[]
 *               value-initialises absent entries).
 */
template <typename Key, typename Value>
class FlatMap
{
  public:
    FlatMap() = default;

    /** Construct sized for @p expected entries without rehashing. */
    explicit FlatMap(std::size_t expected) { reserve(expected); }

    /** Number of stored entries. */
    std::size_t size() const { return size_; }

    /** True when no entries are stored. */
    bool empty() const { return size_ == 0; }

    /** Current slot count (power of two, 0 before first insert). */
    std::size_t capacity() const { return slots_.size(); }

    /** Grow so @p expected entries fit without rehashing. */
    void
    reserve(std::size_t expected)
    {
        std::size_t want = kMinCapacity;
        // Keep the load factor at or below ~0.7 after `expected` fills.
        while (want * 7 < expected * 10)
            want <<= 1;
        if (want > slots_.size())
            rehash(want);
    }

    /**
     * Value for @p key, value-initialised and inserted when absent.
     * The returned reference is invalidated by the next insertion.
     */
    Value &
    operator[](Key key)
    {
        if (size_ + 1 > maxLoad())
            rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
        std::size_t idx = probeStart(key);
        while (used_[idx]) {
            if (slots_[idx].first == key)
                return slots_[idx].second;
            idx = (idx + 1) & mask_;
        }
        used_[idx] = 1;
        slots_[idx] = {key, Value{}};
        ++size_;
        return slots_[idx].second;
    }

    /** Pointer to the value for @p key, or nullptr when absent. */
    const Value *
    find(Key key) const
    {
        if (slots_.empty())
            return nullptr;
        std::size_t idx = probeStart(key);
        while (used_[idx]) {
            if (slots_[idx].first == key)
                return &slots_[idx].second;
            idx = (idx + 1) & mask_;
        }
        return nullptr;
    }

    /** Mutable find; nullptr when absent (never inserts). */
    Value *
    find(Key key)
    {
        const FlatMap &self = *this;
        return const_cast<Value *>(self.find(key));
    }

    /** True when @p key is present. */
    bool contains(Key key) const { return find(key) != nullptr; }

    /** Value for @p key, or @p fallback when absent. */
    Value
    get(Key key, Value fallback = Value{}) const
    {
        const Value *v = find(key);
        return v != nullptr ? *v : fallback;
    }

    /**
     * Visit every (key, value) entry in slot order. Deterministic for
     * a fixed insertion sequence; not sorted.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (used_[i])
                fn(slots_[i].first, slots_[i].second);
        }
    }

    /**
     * Keep only entries where pred(key, value) holds, rebuilding the
     * table. This replaces per-entry erase: the map stays
     * tombstone-free and probe distances reset to fresh-insert cost.
     */
    template <typename Pred>
    void
    filter(Pred &&pred)
    {
        FlatMap kept;
        kept.reserve(size_);
        forEach([&](Key key, const Value &value) {
            if (pred(key, value))
                kept[key] = value;
        });
        *this = std::move(kept);
    }

    /** Remove everything, keeping the allocated capacity. */
    void
    clear()
    {
        used_.assign(used_.size(), 0);
        size_ = 0;
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;

    /** Grow past this occupancy (load factor 0.7). */
    std::size_t maxLoad() const { return slots_.size() * 7 / 10; }

    std::size_t
    probeStart(Key key) const
    {
        return static_cast<std::size_t>(
                   mixKey(static_cast<std::uint64_t>(key))) &
               mask_;
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<std::pair<Key, Value>> old_slots;
        std::vector<std::uint8_t> old_used;
        old_slots.swap(slots_);
        old_used.swap(used_);
        slots_.resize(new_capacity);
        used_.assign(new_capacity, 0);
        mask_ = new_capacity - 1;
        size_ = 0;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (old_used[i])
                (*this)[old_slots[i].first] = old_slots[i].second;
        }
    }

    std::vector<std::pair<Key, Value>> slots_;
    std::vector<std::uint8_t> used_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace util
} // namespace topo

#endif // TOPO_UTIL_FLAT_MAP_HH
