#include "topo/util/string_utils.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "topo/util/error.hh"

namespace topo
{

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> fields;
    std::string current;
    for (char ch : text) {
        if (ch == delim) {
            fields.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    fields.push_back(current);
    return fields;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::int64_t
parseInt(const std::string &text, const std::string &what)
{
    const std::string s = trim(text);
    require(!s.empty(), what + ": empty integer");
    std::int64_t scale = 1;
    std::string digits = s;
    const char last = s.back();
    if (last == 'K' || last == 'k')
        scale = 1000;
    else if (last == 'M' || last == 'm')
        scale = 1000000;
    else if (last == 'G' || last == 'g')
        scale = 1000000000;
    if (scale != 1)
        digits = s.substr(0, s.size() - 1);
    char *endp = nullptr;
    const long long value = std::strtoll(digits.c_str(), &endp, 10);
    require(endp && *endp == '\0' && endp != digits.c_str(),
            what + ": malformed integer '" + text + "'");
    return static_cast<std::int64_t>(value) * scale;
}

double
parseDouble(const std::string &text, const std::string &what)
{
    const std::string s = trim(text);
    require(!s.empty(), what + ": empty number");
    char *endp = nullptr;
    const double value = std::strtod(s.c_str(), &endp);
    require(endp && *endp == '\0' && endp != s.c_str(),
            what + ": malformed number '" + text + "'");
    return value;
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    // Single-row dynamic program; strings here are short option names.
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
        }
    }
    return row[b.size()];
}

} // namespace topo
