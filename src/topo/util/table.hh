/**
 * @file
 * Plain-text table and CSV emission. Every bench binary reports the
 * paper's rows through TextTable so all outputs share one format.
 */

#ifndef TOPO_UTIL_TABLE_HH
#define TOPO_UTIL_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace topo
{

/**
 * A simple column-aligned text table with an optional title.
 *
 * Cells are strings; helpers format numbers consistently. Rendering
 * pads each column to the widest cell and separates header from body
 * with a rule.
 */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a full row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Number of body rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render as aligned text to a stream. */
    void render(std::ostream &os, const std::string &title = "") const;

    /** Render as CSV (RFC-4180-ish quoting) to a stream. */
    void renderCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimal places. */
std::string fmtDouble(double value, int decimals = 3);

/** Format a fraction as a percentage string, e.g. 0.0486 -> "4.86%". */
std::string fmtPercent(double fraction, int decimals = 2);

/** Format a byte count using K/M suffixes like the paper's Table 1. */
std::string fmtBytes(std::uint64_t bytes);

/** Format a large count with K/M suffixes (e.g. trace lengths). */
std::string fmtCount(std::uint64_t count);

} // namespace topo

#endif // TOPO_UTIL_TABLE_HH
