/**
 * @file
 * Deterministic random number generation for libtopo.
 *
 * All randomness in the library flows through Rng so that every
 * experiment is exactly reproducible from a single 64-bit seed. The
 * generator is xoshiro256** seeded through SplitMix64, which is both
 * fast and statistically strong for simulation purposes.
 */

#ifndef TOPO_UTIL_RNG_HH
#define TOPO_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace topo
{

/**
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Satisfies the essential parts of the UniformRandomBitGenerator
 * concept so it can also be handed to standard library facilities.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Callable form required by UniformRandomBitGenerator. */
    result_type operator()() { return next(); }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal variate (Box-Muller, internally cached). */
    double nextGaussian();

    /**
     * Log-normal variate exp(mu + sigma * N(0,1)).
     *
     * @param mu    Mean of the underlying normal.
     * @param sigma Standard deviation of the underlying normal.
     */
    double nextLogNormal(double mu, double sigma);

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /** Fisher-Yates shuffle of a vector, in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /**
     * Derive an independent child generator. Used to give each
     * experiment repetition its own stream without coupling to how many
     * draws earlier repetitions consumed.
     *
     * @param stream Identifier of the child stream.
     */
    Rng split(std::uint64_t stream) const;

  private:
    std::array<std::uint64_t, 4> state_;
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
    std::uint64_t seed_;
};

} // namespace topo

#endif // TOPO_UTIL_RNG_HH
