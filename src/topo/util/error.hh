/**
 * @file
 * Error handling primitives for libtopo.
 *
 * Follows the gem5 fatal/panic split: TopoError (via require/fail) is for
 * conditions caused by the caller (bad configuration, inconsistent
 * arguments); assertions/panics are reserved for internal invariant
 * violations.
 */

#ifndef TOPO_UTIL_ERROR_HH
#define TOPO_UTIL_ERROR_HH

#include <stdexcept>
#include <string>

namespace topo
{

/**
 * Exception thrown for user-correctable errors: invalid configuration,
 * inconsistent inputs, out-of-range parameters.
 */
class TopoError : public std::runtime_error
{
  public:
    explicit TopoError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Throw a TopoError with the given message. Marked [[noreturn]] so it can
 * terminate value-returning control paths.
 *
 * @param msg Human-readable description of the problem.
 */
[[noreturn]] void fail(const std::string &msg);

/**
 * Check a caller-facing precondition; throws TopoError on failure.
 *
 * @param cond Condition that must hold.
 * @param msg  Message used when the condition does not hold.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fail(msg);
}

} // namespace topo

#endif // TOPO_UTIL_ERROR_HH
