/**
 * @file
 * Error handling primitives for libtopo.
 *
 * Follows the gem5 fatal/panic split: TopoError (via require/fail) is for
 * conditions caused by the caller (bad configuration, inconsistent
 * arguments); assertions/panics are reserved for internal invariant
 * violations.
 *
 * Every TopoError carries an ErrCode classifying the failure, and the
 * CLI tools translate that code into a stable process exit code so
 * scripts and CI can distinguish failure classes:
 *
 *   0  success
 *   1  user error (bad flags, missing files, inconsistent arguments)
 *   2  corrupt input (malformed/truncated trace, program, layout,
 *      checkpoint; CRC mismatch)
 *   3  internal error (invariant violation, unexpected exception)
 */

#ifndef TOPO_UTIL_ERROR_HH
#define TOPO_UTIL_ERROR_HH

#include <stdexcept>
#include <string>

namespace topo
{

/** Failure classes, numerically equal to the tool exit codes. */
enum class ErrCode : int
{
    kUser = 1,
    kCorrupt = 2,
    kInternal = 3,
};

/** Stable exit code of a failure class. */
constexpr int
exitCodeFor(ErrCode code)
{
    return static_cast<int>(code);
}

/**
 * Exception thrown for recoverable errors. The code classifies the
 * failure; context names the thing that failed (a file path, an
 * injection site, a tool stage) separately from the message so
 * handlers can report it in a structured way.
 */
class TopoError : public std::runtime_error
{
  public:
    explicit TopoError(const std::string &what_arg,
                       ErrCode code = ErrCode::kUser,
                       std::string context = "")
        : std::runtime_error(context.empty() ? what_arg
                                             : context + ": " + what_arg),
          code_(code), context_(std::move(context))
    {}

    /** Failure class (determines the tool exit code). */
    ErrCode code() const { return code_; }

    /** Process exit code for this failure. */
    int exitCode() const { return exitCodeFor(code_); }

    /** What failed (file path, injection site, stage); may be empty. */
    const std::string &context() const { return context_; }

  private:
    ErrCode code_;
    std::string context_;
};

/**
 * Throw a TopoError with the given message. Marked [[noreturn]] so it can
 * terminate value-returning control paths.
 *
 * @param msg Human-readable description of the problem.
 */
[[noreturn]] void fail(const std::string &msg);

/** Throw a corrupt-input TopoError (exit code 2). */
[[noreturn]] void failCorrupt(const std::string &msg,
                              const std::string &context = "");

/** Throw an internal-error TopoError (exit code 3). */
[[noreturn]] void failInternal(const std::string &msg,
                               const std::string &context = "");

/**
 * Check a caller-facing precondition; throws TopoError on failure.
 *
 * @param cond Condition that must hold.
 * @param msg  Message used when the condition does not hold.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fail(msg);
}

/**
 * Check a property of external input data; throws a corrupt-input
 * TopoError (exit code 2) on failure.
 */
inline void
requireData(bool cond, const std::string &msg,
            const std::string &context = "")
{
    if (!cond)
        failCorrupt(msg, context);
}

} // namespace topo

#endif // TOPO_UTIL_ERROR_HH
