#include "topo/util/rng.hh"

#include <cmath>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** SplitMix64 step; used for seeding only. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    // xoshiro's all-zero state is degenerate; SplitMix64 cannot produce
    // four zero words from any seed, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    require(bound != 0, "Rng::nextBelow: bound must be non-zero");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    require(lo <= hi, "Rng::nextInRange: lo must be <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) {
        // Full 64-bit range.
        return static_cast<std::int64_t>(next());
    }
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 bits of mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    // Box-Muller transform; avoid log(0).
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::nextLogNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * nextGaussian());
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::split(std::uint64_t stream) const
{
    // Mix the original seed with the stream id through SplitMix64 twice
    // so adjacent stream ids produce unrelated child seeds.
    std::uint64_t s = seed_ ^ (0xa0761d6478bd642fULL * (stream + 1));
    std::uint64_t child = splitMix64(s);
    child ^= splitMix64(s);
    return Rng(child);
}

} // namespace topo
