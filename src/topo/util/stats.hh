/**
 * @file
 * Descriptive statistics helpers used by the evaluation harness:
 * running summaries, percentiles, Pearson correlation and simple
 * least-squares fits (for the Figure 6 correlation experiment).
 */

#ifndef TOPO_UTIL_STATS_HH
#define TOPO_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace topo
{

/**
 * Incremental summary of a stream of doubles (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /**
     * Fold another summary into this one (Chan et al. parallel
     * combine). Exact for count/sum/min/max; mean and variance match
     * the serial accumulation up to floating-point rounding.
     */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }
    /** Sum of all observations. */
    double sum() const { return sum_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance; 0 with fewer than two observations. */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;
    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }
    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    RunningStats();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0; // set to +inf in the constructor
    double max_ = 0.0; // set to -inf in the constructor
};

/**
 * Percentile of a sample using linear interpolation between order
 * statistics. The input vector is copied and sorted.
 *
 * @param samples Observations (must be non-empty).
 * @param pct     Percentile in [0, 100].
 */
double percentile(const std::vector<double> &samples, double pct);

/** Arithmetic mean of a sample (0 for empty input). */
double mean(const std::vector<double> &samples);

/** Sample standard deviation (n-1 denominator; 0 for n < 2). */
double sampleStddev(const std::vector<double> &samples);

/**
 * Pearson correlation coefficient of two equal-length samples.
 * Returns 0 when either sample has zero variance.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Result of a one-dimensional least squares fit y = slope*x + offset. */
struct LinearFit
{
    double slope = 0.0;
    double offset = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
};

/** Ordinary least squares fit of ys against xs (equal, non-zero length). */
LinearFit leastSquares(const std::vector<double> &xs,
                       const std::vector<double> &ys);

/**
 * Empirical CDF points of a sample, sorted ascending. The i-th returned
 * pair is (value, fraction of sample <= value), matching the axes of
 * the paper's Figure 5.
 */
std::vector<std::pair<double, double>>
empiricalCdf(const std::vector<double> &samples);

} // namespace topo

#endif // TOPO_UTIL_STATS_HH
