#include "topo/util/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "topo/util/error.hh"

namespace topo
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "TextTable: need at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "TextTable::addRow: row width does not match header");
    rows_.push_back(std::move(cells));
}

void
TextTable::render(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << '\n';
    };

    if (!title.empty())
        os << title << '\n';
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::renderCsv(std::ostream &os) const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << quote(row[c]);
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
fmtDouble(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return oss.str();
}

std::string
fmtPercent(double fraction, int decimals)
{
    return fmtDouble(fraction * 100.0, decimals) + "%";
}

std::string
fmtBytes(std::uint64_t bytes)
{
    if (bytes >= 1024ULL * 1024ULL) {
        return fmtDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 1) +
               " M";
    }
    if (bytes >= 1024ULL) {
        return std::to_string((bytes + 512) / 1024) + " K";
    }
    return std::to_string(bytes) + " B";
}

std::string
fmtCount(std::uint64_t count)
{
    if (count >= 1000000ULL) {
        return fmtDouble(static_cast<double>(count) / 1e6, 1) + " M";
    }
    if (count >= 1000ULL) {
        return fmtDouble(static_cast<double>(count) / 1e3, 1) + " K";
    }
    return std::to_string(count);
}

} // namespace topo
