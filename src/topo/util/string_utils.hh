/**
 * @file
 * Small string parsing/formatting helpers shared across modules.
 */

#ifndef TOPO_UTIL_STRING_UTILS_HH
#define TOPO_UTIL_STRING_UTILS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace topo
{

/** Split on a delimiter; empty fields preserved. */
std::vector<std::string> split(const std::string &text, char delim);

/** Strip ASCII whitespace from both ends. */
std::string trim(const std::string &text);

/**
 * Parse a signed integer; throws TopoError naming @p what on failure.
 * Accepts an optional K/M/G suffix (powers of ten: 2K == 2000).
 */
std::int64_t parseInt(const std::string &text, const std::string &what);

/** Parse a double; throws TopoError naming @p what on failure. */
double parseDouble(const std::string &text, const std::string &what);

/**
 * Levenshtein edit distance between two strings. Used for the
 * "did you mean" hints on unknown command-line options.
 */
std::size_t editDistance(const std::string &a, const std::string &b);

} // namespace topo

#endif // TOPO_UTIL_STRING_UTILS_HH
