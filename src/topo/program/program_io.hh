/**
 * @file
 * Text serialisation of a Program (procedure inventory).
 *
 * Format: header "topo-program v1", then one line per procedure:
 * "<name> <size_bytes>" in source order. '#' starts a comment. This is
 * the interchange format of the CLI tools: a build system can emit it
 * from `nm --print-size` output and feed it to topo_place.
 */

#ifndef TOPO_PROGRAM_PROGRAM_IO_HH
#define TOPO_PROGRAM_PROGRAM_IO_HH

#include <iosfwd>
#include <string>

#include "topo/program/program.hh"

namespace topo
{

/** Write a program in the text format. */
void writeProgram(std::ostream &os, const Program &program);

/** Read a program; throws TopoError on malformed input. */
Program readProgram(std::istream &is, const std::string &name = "program");

/** Write a program to a file path. */
void saveProgram(const std::string &path, const Program &program);

/** Read a program from a file path. */
Program loadProgram(const std::string &path);

} // namespace topo

#endif // TOPO_PROGRAM_PROGRAM_IO_HH
