#include "topo/program/program.hh"

#include "topo/util/error.hh"

namespace topo
{

Program::Program(std::string name)
    : name_(std::move(name))
{
}

ProcId
Program::addProcedure(const std::string &name, std::uint32_t size_bytes)
{
    require(size_bytes > 0, "Program::addProcedure: zero-sized procedure '" +
                                name + "'");
    require(procs_.size() < kInvalidProc,
            "Program::addProcedure: too many procedures");
    procs_.push_back(Procedure{name, size_bytes});
    total_size_ += size_bytes;
    return static_cast<ProcId>(procs_.size() - 1);
}

const Procedure &
Program::proc(ProcId id) const
{
    require(id < procs_.size(), "Program::proc: invalid procedure id");
    return procs_[id];
}

ProcId
Program::findProc(const std::string &name) const
{
    for (std::size_t i = 0; i < procs_.size(); ++i) {
        if (procs_[i].name == name)
            return static_cast<ProcId>(i);
    }
    return kInvalidProc;
}

std::uint32_t
Program::sizeInLines(ProcId id, std::uint32_t line_bytes) const
{
    require(line_bytes > 0, "Program::sizeInLines: zero line size");
    const Procedure &p = proc(id);
    return (p.size_bytes + line_bytes - 1) / line_bytes;
}

} // namespace topo
