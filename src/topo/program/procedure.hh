/**
 * @file
 * Procedure: the code block whose placement the library optimizes.
 */

#ifndef TOPO_PROGRAM_PROCEDURE_HH
#define TOPO_PROGRAM_PROCEDURE_HH

#include <cstdint>
#include <string>

namespace topo
{

/** Index of a procedure within its Program. */
using ProcId = std::uint32_t;

/** Sentinel for "no procedure". */
inline constexpr ProcId kInvalidProc = ~ProcId{0};

/**
 * A procedure in the program's text segment.
 *
 * Only the properties relevant to placement are modelled: a name (for
 * reporting and linker-script emission) and a size in bytes. Addresses
 * are *not* a property of the procedure; they live in a Layout.
 */
struct Procedure
{
    std::string name;
    std::uint32_t size_bytes = 0;
};

} // namespace topo

#endif // TOPO_PROGRAM_PROCEDURE_HH
