/**
 * @file
 * Program: the inventory of procedures making up a text segment.
 */

#ifndef TOPO_PROGRAM_PROGRAM_HH
#define TOPO_PROGRAM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/program/procedure.hh"

namespace topo
{

/**
 * The set of procedures of one application, in "source order".
 *
 * Source order is the order procedures appeared in the object files fed
 * to the linker; the paper's *default layout* simply concatenates
 * procedures in this order. Procedure ids are stable indices into this
 * inventory and are used throughout the library.
 */
class Program
{
  public:
    /** Construct an empty program with a display name. */
    explicit Program(std::string name = "program");

    /**
     * Append a procedure and return its id.
     *
     * @param name       Unique symbol name.
     * @param size_bytes Code size; must be non-zero.
     */
    ProcId addProcedure(const std::string &name, std::uint32_t size_bytes);

    /** Display name of the program. */
    const std::string &name() const { return name_; }

    /** Number of procedures. */
    std::size_t procCount() const { return procs_.size(); }

    /** Access a procedure by id (bounds-checked). */
    const Procedure &proc(ProcId id) const;

    /** All procedures in source order. */
    const std::vector<Procedure> &procs() const { return procs_; }

    /** Sum of all procedure sizes in bytes. */
    std::uint64_t totalSize() const { return total_size_; }

    /** Look up a procedure id by name; kInvalidProc when absent. */
    ProcId findProc(const std::string &name) const;

    /**
     * Size of a procedure in cache lines, rounded up.
     *
     * @param id         Procedure id.
     * @param line_bytes Cache line size in bytes (non-zero).
     */
    std::uint32_t sizeInLines(ProcId id, std::uint32_t line_bytes) const;

  private:
    std::string name_;
    std::vector<Procedure> procs_;
    std::uint64_t total_size_ = 0;
};

} // namespace topo

#endif // TOPO_PROGRAM_PROGRAM_HH
