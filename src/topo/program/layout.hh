/**
 * @file
 * Layout: the address map that a placement algorithm produces.
 *
 * A layout assigns every procedure of a Program a starting byte address
 * in the text segment. The paper manipulates two degrees of freedom —
 * procedure order and inter-procedure gaps — and both are expressible
 * here. Addresses are required to be cache-line aligned (placement
 * operates in line units; real linkers align functions anyway).
 */

#ifndef TOPO_PROGRAM_LAYOUT_HH
#define TOPO_PROGRAM_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"

namespace topo
{

/**
 * Address map: procedure id -> starting byte address.
 */
class Layout
{
  public:
    Layout() = default;

    /** Construct with one address slot per procedure, all unassigned. */
    explicit Layout(std::size_t proc_count);

    /** Sentinel for an unassigned address. */
    static constexpr std::uint64_t kUnassigned = ~std::uint64_t{0};

    /** Number of procedure slots. */
    std::size_t procCount() const { return address_.size(); }

    /** True once every procedure has an address. */
    bool complete() const;

    /** Assign the starting address of a procedure. */
    void setAddress(ProcId id, std::uint64_t address);

    /** Starting address of a procedure; fails if unassigned. */
    std::uint64_t address(ProcId id) const;

    /** True if the procedure has an address. */
    bool assigned(ProcId id) const;

    /**
     * Starting cache line index (address / line_bytes).
     *
     * @param id         Procedure id.
     * @param line_bytes Cache line size in bytes.
     */
    std::uint64_t startLine(ProcId id, std::uint32_t line_bytes) const;

    /** One past the last used byte across all assigned procedures. */
    std::uint64_t extent(const Program &program) const;

    /** Procedure ids sorted by assigned address (assigned only). */
    std::vector<ProcId> orderByAddress() const;

    /**
     * Validate against a program: every procedure assigned, all
     * addresses line-aligned, no two procedures overlapping in the
     * address space. Throws TopoError with a description on failure.
     */
    void validate(const Program &program, std::uint32_t line_bytes) const;

    /**
     * Build the default ("source order") layout: procedures packed in
     * inventory order, each aligned up to a line boundary, with
     * @p pad_bytes of additional empty space after every procedure
     * (used by the Section 5.1 padding experiment).
     */
    static Layout defaultOrder(const Program &program,
                               std::uint32_t line_bytes,
                               std::uint32_t pad_bytes = 0);

    /**
     * Pack procedures in an explicit order, line-aligned, no gaps.
     * Procedures absent from @p order are appended in id order.
     */
    static Layout fromOrder(const Program &program,
                            const std::vector<ProcId> &order,
                            std::uint32_t line_bytes);

    /**
     * Lay out procedures in @p order such that each starts at a cache
     * line congruent to its entry of @p target_line_offsets modulo
     * @p cache_lines, inserting the minimal gap to achieve it. Used to
     * realize cache-relative placement decisions as a linear layout and
     * by the Figure 6 randomisation experiment.
     *
     * @param program             Procedure inventory.
     * @param order               Emission order (must cover all procs).
     * @param target_line_offsets Per-procedure target line mod cache.
     * @param line_bytes          Line size in bytes.
     * @param cache_lines         Number of lines in the target cache.
     */
    static Layout fromCacheOffsets(
        const Program &program, const std::vector<ProcId> &order,
        const std::vector<std::uint32_t> &target_line_offsets,
        std::uint32_t line_bytes, std::uint32_t cache_lines);

    /**
     * Copy of @p base with @p pad_bytes inserted after every procedure
     * (in address order), preserving existing relative gaps; the
     * Section 5.1 experiment.
     */
    static Layout withPadding(const Layout &base, const Program &program,
                              std::uint32_t pad_bytes,
                              std::uint32_t line_bytes);

  private:
    std::vector<std::uint64_t> address_;
};

} // namespace topo

#endif // TOPO_PROGRAM_LAYOUT_HH
