#include "topo/program/layout_io.hh"

#include <fstream>
#include <sstream>

#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"

namespace topo
{

namespace
{

/** Emit one "!<key> <value>" metadata line when the value is set. */
void
writeMeta(std::ostream &os, const char *key, const std::string &value)
{
    if (!value.empty())
        os << '!' << key << ' ' << value << '\n';
}

void
writeEntries(std::ostream &os, const Program &program,
             const Layout &layout)
{
    for (ProcId id : layout.orderByAddress())
        os << program.proc(id).name << ' ' << layout.address(id) << '\n';
}

} // namespace

std::string
LayoutProvenance::describe() const
{
    std::ostringstream os;
    const char *sep = "";
    if (!algorithm.empty()) {
        os << "algorithm=" << algorithm;
        sep = " ";
    }
    if (!cache.empty()) {
        os << sep << "cache=" << cache;
        sep = " ";
    }
    if (!git_sha.empty()) {
        os << sep << "sha=" << git_sha;
        sep = " ";
    }
    if (!seed.empty())
        os << sep << "seed=" << seed;
    return os.str();
}

void
writeLayout(std::ostream &os, const Program &program, const Layout &layout)
{
    os << "topo-layout v1\n";
    writeEntries(os, program, layout);
}

void
writeLayout(std::ostream &os, const Program &program, const Layout &layout,
            const LayoutProvenance &provenance)
{
    os << "topo-layout v2\n";
    writeMeta(os, "algorithm", provenance.algorithm);
    writeMeta(os, "cache", provenance.cache);
    writeMeta(os, "git_sha", provenance.git_sha);
    writeMeta(os, "seed", provenance.seed);
    writeEntries(os, program, layout);
}

Layout
readLayout(std::istream &is, const Program &program,
           LayoutProvenance *provenance)
{
    std::string line;
    requireData(static_cast<bool>(std::getline(is, line)),
                "readLayout: missing header");
    const std::string header = trim(line);
    const bool v2 = header == "topo-layout v2";
    requireData(header == "topo-layout v1" || v2,
                "readLayout: bad header '" + line + "'");
    Layout layout(program.procCount());
    LayoutProvenance meta;
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        if (body[0] == '!') {
            requireData(v2,
                        "readLayout: metadata line in a v1 file at line " +
                            std::to_string(line_no));
            const std::size_t space = body.find(' ');
            const std::string key =
                body.substr(1, space == std::string::npos
                                   ? std::string::npos
                                   : space - 1);
            const std::string value =
                space == std::string::npos ? ""
                                           : trim(body.substr(space + 1));
            if (key == "algorithm")
                meta.algorithm = value;
            else if (key == "cache")
                meta.cache = value;
            else if (key == "git_sha")
                meta.git_sha = value;
            else if (key == "seed")
                meta.seed = value;
            else
                failCorrupt("readLayout: unknown metadata key '" + key +
                            "' at line " + std::to_string(line_no));
            continue;
        }
        std::istringstream fields(body);
        std::string name;
        std::uint64_t address = 0;
        fields >> name >> address;
        requireData(!fields.fail() && !name.empty(),
                    "readLayout: malformed entry at line " +
                        std::to_string(line_no));
        const ProcId id = program.findProc(name);
        requireData(id != kInvalidProc,
                    "readLayout: unknown procedure '" + name +
                        "' at line " + std::to_string(line_no));
        requireData(!layout.assigned(id),
                    "readLayout: duplicate procedure '" + name +
                        "' at line " + std::to_string(line_no));
        layout.setAddress(id, address);
    }
    requireData(layout.complete(),
                "readLayout: layout does not cover every procedure");
    if (provenance)
        *provenance = std::move(meta);
    return layout;
}

void
saveLayout(const std::string &path, const Program &program,
           const Layout &layout)
{
    std::ofstream os(path);
    require(os.good(), "saveLayout: cannot open '" + path + "'");
    writeLayout(os, program, layout);
    require(os.good(), "saveLayout: write failed for '" + path + "'");
}

void
saveLayout(const std::string &path, const Program &program,
           const Layout &layout, const LayoutProvenance &provenance)
{
    std::ofstream os(path);
    require(os.good(), "saveLayout: cannot open '" + path + "'");
    writeLayout(os, program, layout, provenance);
    require(os.good(), "saveLayout: write failed for '" + path + "'");
}

Layout
loadLayout(const std::string &path, const Program &program,
           LayoutProvenance *provenance)
{
    std::ifstream is(path);
    require(is.good(), "loadLayout: cannot open '" + path + "'");
    return readLayout(is, program, provenance);
}

} // namespace topo
