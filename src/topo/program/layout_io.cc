#include "topo/program/layout_io.hh"

#include <fstream>
#include <sstream>

#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"

namespace topo
{

void
writeLayout(std::ostream &os, const Program &program, const Layout &layout)
{
    os << "topo-layout v1\n";
    for (ProcId id : layout.orderByAddress())
        os << program.proc(id).name << ' ' << layout.address(id) << '\n';
}

Layout
readLayout(std::istream &is, const Program &program)
{
    std::string line;
    requireData(static_cast<bool>(std::getline(is, line)),
                "readLayout: missing header");
    requireData(trim(line) == "topo-layout v1",
            "readLayout: bad header '" + line + "'");
    Layout layout(program.procCount());
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        std::istringstream fields(body);
        std::string name;
        std::uint64_t address = 0;
        fields >> name >> address;
        requireData(!fields.fail() && !name.empty(),
                    "readLayout: malformed entry at line " +
                        std::to_string(line_no));
        const ProcId id = program.findProc(name);
        requireData(id != kInvalidProc,
                    "readLayout: unknown procedure '" + name +
                        "' at line " + std::to_string(line_no));
        requireData(!layout.assigned(id),
                    "readLayout: duplicate procedure '" + name +
                        "' at line " + std::to_string(line_no));
        layout.setAddress(id, address);
    }
    requireData(layout.complete(),
                "readLayout: layout does not cover every procedure");
    return layout;
}

void
saveLayout(const std::string &path, const Program &program,
           const Layout &layout)
{
    std::ofstream os(path);
    require(os.good(), "saveLayout: cannot open '" + path + "'");
    writeLayout(os, program, layout);
    require(os.good(), "saveLayout: write failed for '" + path + "'");
}

Layout
loadLayout(const std::string &path, const Program &program)
{
    std::ifstream is(path);
    require(is.good(), "loadLayout: cannot open '" + path + "'");
    return readLayout(is, program);
}

} // namespace topo
