/**
 * @file
 * Emission of a layout as a GNU-ld style linker script fragment.
 *
 * In the paper the placement tool's output is consumed by the linker;
 * this writer produces the equivalent artifact so a layout can be
 * inspected, diffed, or applied to a real link.
 */

#ifndef TOPO_PROGRAM_LAYOUT_SCRIPT_HH
#define TOPO_PROGRAM_LAYOUT_SCRIPT_HH

#include <iosfwd>
#include <string>

#include "topo/program/layout.hh"
#include "topo/program/program.hh"

namespace topo
{

/**
 * Write a linker-script fragment placing each procedure's input section
 * at its layout address (procedures in address order, explicit '.'
 * advances for gaps).
 *
 * @param os         Destination stream.
 * @param program    Procedure inventory.
 * @param layout     Complete, validated layout.
 * @param line_bytes Cache line size used for validation.
 */
void writeLinkerScript(std::ostream &os, const Program &program,
                       const Layout &layout, std::uint32_t line_bytes);

/**
 * Write a human-readable placement map: one line per procedure with
 * address, size, and target cache line, plus gap annotations.
 *
 * @param os          Destination stream.
 * @param program     Procedure inventory.
 * @param layout      Complete layout.
 * @param line_bytes  Cache line size in bytes.
 * @param cache_lines Number of lines in the cache (for the mod column).
 */
void writePlacementMap(std::ostream &os, const Program &program,
                       const Layout &layout, std::uint32_t line_bytes,
                       std::uint32_t cache_lines);

} // namespace topo

#endif // TOPO_PROGRAM_LAYOUT_SCRIPT_HH
