#include "topo/program/layout_script.hh"

#include <iomanip>
#include <ostream>

#include "topo/util/error.hh"

namespace topo
{

void
writeLinkerScript(std::ostream &os, const Program &program,
                  const Layout &layout, std::uint32_t line_bytes)
{
    layout.validate(program, line_bytes);
    os << "/* libtopo placement for '" << program.name() << "' */\n";
    os << "SECTIONS\n{\n  .text 0x0 :\n  {\n";
    std::uint64_t cursor = 0;
    for (ProcId id : layout.orderByAddress()) {
        const std::uint64_t addr = layout.address(id);
        if (addr > cursor) {
            os << "    . = . + 0x" << std::hex << (addr - cursor) << std::dec
               << "; /* gap */\n";
        }
        os << "    *(.text." << program.proc(id).name << ")\n";
        cursor = addr + program.proc(id).size_bytes;
    }
    os << "  }\n}\n";
}

void
writePlacementMap(std::ostream &os, const Program &program,
                  const Layout &layout, std::uint32_t line_bytes,
                  std::uint32_t cache_lines)
{
    require(line_bytes > 0 && cache_lines > 0,
            "writePlacementMap: zero line size or cache lines");
    os << "# placement map for '" << program.name() << "'\n";
    os << "# address  size  cache_line  name\n";
    std::uint64_t cursor = 0;
    for (ProcId id : layout.orderByAddress()) {
        const std::uint64_t addr = layout.address(id);
        if (addr > cursor) {
            os << "# gap of " << (addr - cursor) << " bytes ("
               << (addr - cursor) / line_bytes << " lines)\n";
        }
        os << std::setw(8) << addr << "  " << std::setw(6)
           << program.proc(id).size_bytes << "  " << std::setw(6)
           << (addr / line_bytes) % cache_lines << "  "
           << program.proc(id).name << '\n';
        cursor = addr + program.proc(id).size_bytes;
    }
}

} // namespace topo
