/**
 * @file
 * Text serialisation of a Layout.
 *
 * Format v1: header "topo-layout v1", then one line per procedure:
 * "<name> <address>". '#' starts a comment.
 *
 * Format v2 adds provenance: header "topo-layout v2", then zero or
 * more "!<key> <value>" metadata lines (algorithm, cache, git_sha,
 * seed) before the procedure entries. Readers accept both versions;
 * unknown '!' keys are rejected as corrupt so typos cannot silently
 * drop provenance. Together with the program format this lets the CLI
 * tools pass placements between runs, and lets `topo_report --diff`
 * label each side with where its layout came from.
 */

#ifndef TOPO_PROGRAM_LAYOUT_IO_HH
#define TOPO_PROGRAM_LAYOUT_IO_HH

#include <iosfwd>
#include <string>

#include "topo/program/layout.hh"

namespace topo
{

/** Provenance embedded in (or parsed from) a v2 layout header. */
struct LayoutProvenance
{
    /** Placement algorithm that produced the layout ("gbsc", ...). */
    std::string algorithm;
    /** Cache geometry description the placement targeted. */
    std::string cache;
    /** Git revision of the producing build. */
    std::string git_sha;
    /** Tie-break / shuffle seed, when one applied. */
    std::string seed;

    /** True when no field is set (v1 files parse to this). */
    bool
    empty() const
    {
        return algorithm.empty() && cache.empty() && git_sha.empty() &&
               seed.empty();
    }

    /** One-line "algorithm=gbsc cache=... sha=..." summary ("" when
     *  empty) for report labels. */
    std::string describe() const;
};

/** Write a complete layout in the v1 text format (address order). */
void writeLayout(std::ostream &os, const Program &program,
                 const Layout &layout);

/** Write a layout in the v2 format with embedded provenance. */
void writeLayout(std::ostream &os, const Program &program,
                 const Layout &layout,
                 const LayoutProvenance &provenance);

/**
 * Read a layout for @p program; every procedure must appear exactly
 * once. Accepts v1 and v2 headers; v2 provenance is returned through
 * @p provenance when non-null. Throws TopoError on malformed or
 * incomplete input.
 */
Layout readLayout(std::istream &is, const Program &program,
                  LayoutProvenance *provenance = nullptr);

/** Write a layout to a file path (v1 format). */
void saveLayout(const std::string &path, const Program &program,
                const Layout &layout);

/** Write a layout with provenance to a file path (v2 format). */
void saveLayout(const std::string &path, const Program &program,
                const Layout &layout,
                const LayoutProvenance &provenance);

/** Read a layout from a file path (either version). */
Layout loadLayout(const std::string &path, const Program &program,
                  LayoutProvenance *provenance = nullptr);

} // namespace topo

#endif // TOPO_PROGRAM_LAYOUT_IO_HH
