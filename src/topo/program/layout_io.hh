/**
 * @file
 * Text serialisation of a Layout.
 *
 * Format: header "topo-layout v1", then one line per procedure:
 * "<name> <address>". '#' starts a comment. Together with the program
 * format this lets the CLI tools pass placements between runs (e.g.
 * place once, simulate under many cache geometries).
 */

#ifndef TOPO_PROGRAM_LAYOUT_IO_HH
#define TOPO_PROGRAM_LAYOUT_IO_HH

#include <iosfwd>
#include <string>

#include "topo/program/layout.hh"

namespace topo
{

/** Write a complete layout in the text format (address order). */
void writeLayout(std::ostream &os, const Program &program,
                 const Layout &layout);

/**
 * Read a layout for @p program; every procedure must appear exactly
 * once. Throws TopoError on malformed or incomplete input.
 */
Layout readLayout(std::istream &is, const Program &program);

/** Write a layout to a file path. */
void saveLayout(const std::string &path, const Program &program,
                const Layout &layout);

/** Read a layout from a file path. */
Layout loadLayout(const std::string &path, const Program &program);

} // namespace topo

#endif // TOPO_PROGRAM_LAYOUT_IO_HH
