#include "topo/program/program_io.hh"

#include <fstream>
#include <sstream>

#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"

namespace topo
{

void
writeProgram(std::ostream &os, const Program &program)
{
    os << "topo-program v1\n";
    os << "# " << program.procCount() << " procedures, "
       << program.totalSize() << " bytes\n";
    for (const Procedure &proc : program.procs())
        os << proc.name << ' ' << proc.size_bytes << '\n';
}

Program
readProgram(std::istream &is, const std::string &name)
{
    std::string line;
    requireData(static_cast<bool>(std::getline(is, line)),
                "readProgram: missing header");
    requireData(trim(line) == "topo-program v1",
            "readProgram: bad header '" + line + "'");
    Program program(name);
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        std::istringstream fields(body);
        std::string proc_name;
        std::uint64_t size = 0;
        fields >> proc_name >> size;
        requireData(!fields.fail() && !proc_name.empty(),
                    "readProgram: malformed procedure at line " +
                        std::to_string(line_no));
        requireData(size > 0 && size <= ~std::uint32_t{0},
                    "readProgram: bad size at line " +
                        std::to_string(line_no));
        requireData(program.findProc(proc_name) == kInvalidProc,
                    "readProgram: duplicate procedure '" + proc_name +
                        "' at line " + std::to_string(line_no));
        program.addProcedure(proc_name,
                             static_cast<std::uint32_t>(size));
    }
    return program;
}

void
saveProgram(const std::string &path, const Program &program)
{
    std::ofstream os(path);
    require(os.good(), "saveProgram: cannot open '" + path + "'");
    writeProgram(os, program);
    require(os.good(), "saveProgram: write failed for '" + path + "'");
}

Program
loadProgram(const std::string &path)
{
    std::ifstream is(path);
    require(is.good(), "loadProgram: cannot open '" + path + "'");
    // Derive a display name from the file name.
    std::string name = path;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return readProgram(is, name);
}

} // namespace topo
