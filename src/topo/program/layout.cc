#include "topo/program/layout.hh"

#include <algorithm>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

std::uint64_t
alignUp(std::uint64_t value, std::uint64_t alignment)
{
    return (value + alignment - 1) / alignment * alignment;
}

} // namespace

Layout::Layout(std::size_t proc_count)
    : address_(proc_count, kUnassigned)
{
}

bool
Layout::complete() const
{
    return std::all_of(address_.begin(), address_.end(),
                       [](std::uint64_t a) { return a != kUnassigned; });
}

void
Layout::setAddress(ProcId id, std::uint64_t address)
{
    require(id < address_.size(), "Layout::setAddress: invalid id");
    require(address != kUnassigned, "Layout::setAddress: reserved address");
    address_[id] = address;
}

std::uint64_t
Layout::address(ProcId id) const
{
    require(id < address_.size(), "Layout::address: invalid id");
    require(address_[id] != kUnassigned,
            "Layout::address: procedure has no address");
    return address_[id];
}

bool
Layout::assigned(ProcId id) const
{
    require(id < address_.size(), "Layout::assigned: invalid id");
    return address_[id] != kUnassigned;
}

std::uint64_t
Layout::startLine(ProcId id, std::uint32_t line_bytes) const
{
    require(line_bytes > 0, "Layout::startLine: zero line size");
    return address(id) / line_bytes;
}

std::uint64_t
Layout::extent(const Program &program) const
{
    require(program.procCount() == address_.size(),
            "Layout::extent: program/layout size mismatch");
    std::uint64_t end = 0;
    for (std::size_t i = 0; i < address_.size(); ++i) {
        if (address_[i] == kUnassigned)
            continue;
        end = std::max(end, address_[i] +
                                program.proc(static_cast<ProcId>(i))
                                    .size_bytes);
    }
    return end;
}

std::vector<ProcId>
Layout::orderByAddress() const
{
    std::vector<ProcId> order;
    order.reserve(address_.size());
    for (std::size_t i = 0; i < address_.size(); ++i) {
        if (address_[i] != kUnassigned)
            order.push_back(static_cast<ProcId>(i));
    }
    std::sort(order.begin(), order.end(), [this](ProcId a, ProcId b) {
        if (address_[a] != address_[b])
            return address_[a] < address_[b];
        return a < b;
    });
    return order;
}

void
Layout::validate(const Program &program, std::uint32_t line_bytes) const
{
    require(program.procCount() == address_.size(),
            "Layout::validate: program/layout size mismatch");
    require(line_bytes > 0, "Layout::validate: zero line size");
    for (std::size_t i = 0; i < address_.size(); ++i) {
        const auto id = static_cast<ProcId>(i);
        require(address_[i] != kUnassigned,
                "Layout::validate: procedure '" + program.proc(id).name +
                    "' has no address");
        require(address_[i] % line_bytes == 0,
                "Layout::validate: procedure '" + program.proc(id).name +
                    "' is not line-aligned");
        // The cache models reserve line address 2^64-1 as their
        // invalid-frame sentinel; a procedure ending at the very top
        // of the address space would fetch it and alias every empty
        // frame as resident.
        const std::uint64_t size = program.proc(id).size_bytes;
        require(size <= ~std::uint64_t{0} - address_[i] &&
                    (size == 0 ||
                     (address_[i] + size - 1) / line_bytes !=
                         ~std::uint64_t{0}),
                "Layout::validate: procedure '" + program.proc(id).name +
                    "' reaches the reserved top-of-address-space "
                    "cache line");
    }
    const std::vector<ProcId> order = orderByAddress();
    for (std::size_t i = 1; i < order.size(); ++i) {
        const ProcId prev = order[i - 1];
        const ProcId cur = order[i];
        const std::uint64_t prev_end =
            address_[prev] + program.proc(prev).size_bytes;
        require(address_[cur] >= prev_end,
                "Layout::validate: procedures '" + program.proc(prev).name +
                    "' and '" + program.proc(cur).name +
                    "' overlap in the address space");
    }
}

Layout
Layout::defaultOrder(const Program &program, std::uint32_t line_bytes,
                     std::uint32_t pad_bytes)
{
    require(line_bytes > 0, "Layout::defaultOrder: zero line size");
    Layout layout(program.procCount());
    std::uint64_t cursor = 0;
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        const auto id = static_cast<ProcId>(i);
        cursor = alignUp(cursor, line_bytes);
        layout.setAddress(id, cursor);
        cursor += program.proc(id).size_bytes;
        cursor += pad_bytes;
    }
    return layout;
}

Layout
Layout::fromOrder(const Program &program, const std::vector<ProcId> &order,
                  std::uint32_t line_bytes)
{
    require(line_bytes > 0, "Layout::fromOrder: zero line size");
    Layout layout(program.procCount());
    std::uint64_t cursor = 0;
    std::vector<bool> seen(program.procCount(), false);
    auto place = [&](ProcId id) {
        require(id < program.procCount(), "Layout::fromOrder: invalid id");
        require(!seen[id], "Layout::fromOrder: duplicate procedure '" +
                               program.proc(id).name + "' in order");
        seen[id] = true;
        cursor = alignUp(cursor, line_bytes);
        layout.setAddress(id, cursor);
        cursor += program.proc(id).size_bytes;
    };
    for (ProcId id : order)
        place(id);
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        if (!seen[i])
            place(static_cast<ProcId>(i));
    }
    return layout;
}

Layout
Layout::fromCacheOffsets(const Program &program,
                         const std::vector<ProcId> &order,
                         const std::vector<std::uint32_t> &target_line_offsets,
                         std::uint32_t line_bytes, std::uint32_t cache_lines)
{
    require(line_bytes > 0 && cache_lines > 0,
            "Layout::fromCacheOffsets: zero line size or cache lines");
    require(target_line_offsets.size() == program.procCount(),
            "Layout::fromCacheOffsets: offsets size mismatch");
    Layout layout(program.procCount());
    std::uint64_t cursor_line = 0;
    std::vector<bool> seen(program.procCount(), false);
    for (ProcId id : order) {
        require(id < program.procCount(),
                "Layout::fromCacheOffsets: invalid id");
        require(!seen[id], "Layout::fromCacheOffsets: duplicate procedure");
        seen[id] = true;
        const std::uint32_t want = target_line_offsets[id] % cache_lines;
        const std::uint32_t have =
            static_cast<std::uint32_t>(cursor_line % cache_lines);
        const std::uint32_t gap = (want + cache_lines - have) % cache_lines;
        cursor_line += gap;
        layout.setAddress(id, cursor_line * line_bytes);
        cursor_line += program.sizeInLines(id, line_bytes);
    }
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        require(seen[i], "Layout::fromCacheOffsets: order must cover all "
                         "procedures");
    }
    return layout;
}

Layout
Layout::withPadding(const Layout &base, const Program &program,
                    std::uint32_t pad_bytes, std::uint32_t line_bytes)
{
    base.validate(program, line_bytes);
    Layout layout(program.procCount());
    const std::vector<ProcId> order = base.orderByAddress();
    std::uint64_t shift = 0;
    std::uint64_t prev_end = 0;
    for (ProcId id : order) {
        const std::uint64_t original = base.address(id);
        require(original >= prev_end, "Layout::withPadding: base overlaps");
        layout.setAddress(id, original + shift);
        prev_end = original + program.proc(id).size_bytes;
        // The pad lands after this procedure, shifting all later ones.
        shift += alignUp(pad_bytes, line_bytes);
    }
    return layout;
}

} // namespace topo
