/**
 * @file
 * Black-box replacement-policy inference, after CacheQuery (Vila et
 * al., PAPERS.md): drive a fixed battery of membership/eviction query
 * sequences against a cache that exposes only access() hit/miss bits
 * and a cold reset, and identify the replacement policy by matching
 * the observed hit/miss signature against reference signatures
 * computed from the simulator's own policy implementations.
 *
 * The harness doubles as a correctness gate for the simulator: every
 * implemented policy must be uniquely identified when probed through
 * PolicyCache — the reference signatures are recomputed from the same
 * code under test, so a collision or mismatch means two policies
 * became behaviourally indistinguishable (or one changed behaviour),
 * which is a simulator bug by construction. topo_sim --probe-policy
 * runs exactly this check from the CLI; policy_probe_test pins it in
 * ctest.
 *
 * Probe-sequence construction (per geometry, ways W, one battery):
 *
 *  - cold fill + re-probe: fill W distinct lines, touch them again —
 *    sanity bits (all policies fill invalid ways first).
 *  - hit refresh: fill, re-touch the first line, insert a fresh line,
 *    then probe every original line. LRU-like policies protect the
 *    re-touched line (FIFO does not), and the victim pattern of the
 *    cascading probe misses fingerprints the eviction order.
 *  - insertion priority: fill, promote all but the last line, insert
 *    two fresh lines, probe both. SRRIP inserts at distant RRPV, so
 *    its second insert evicts the first (a recency policy keeps it).
 *  - eviction sweep: fill, then insert W fresh lines and probe the
 *    first fresh line after each insert — exposes aging dynamics.
 *  - variability trials: repeated evict-and-probe rounds without a
 *    reset in between; deterministic policies repeat a fixed pattern
 *    while the random policy's RNG cursor keeps advancing.
 *
 * Every access outcome (not just designated probes) enters the
 * signature, and the battery runs on several geometries, so two
 * policies match only if they are access-for-access indistinguishable
 * across all of it.
 */

#ifndef TOPO_CACHE_POLICY_PROBE_HH
#define TOPO_CACHE_POLICY_PROBE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"

namespace topo
{

/** The black box a probe drives: hit/miss bits and a cold reset. */
class PolicyProbeTarget
{
  public:
    virtual ~PolicyProbeTarget() = default;

    /** Access a global line address; true on hit. */
    virtual bool access(std::uint64_t line_addr) = 0;

    /** Return to the cold state (empty cache, reseeded policy). */
    virtual void reset() = 0;
};

/**
 * Build the standard target: a PolicyCache (or DirectMappedCache for
 * 1-way geometries) configured by @p config, including its policy
 * and policy_seed fields.
 */
std::unique_ptr<PolicyProbeTarget>
makeCacheTarget(const CacheConfig &config);

/**
 * Constructs a target for one probe geometry. The factory is called
 * once per geometry in the battery; the config's policy/policy_seed
 * fields are whatever the caller closed over (an external black box
 * would ignore them).
 */
using ProbeTargetFactory =
    std::function<std::unique_ptr<PolicyProbeTarget>(const CacheConfig &)>;

/** Hit/miss outcome bits of the full battery, in access order. */
struct ProbeSignature
{
    std::vector<bool> bits;

    bool
    operator==(const ProbeSignature &other) const
    {
        return bits == other.bits;
    }

    /** Compact rendering ("1011…", one char per access). */
    std::string describe() const;
};

/** Outcome of one black-box identification. */
struct PolicyProbeResult
{
    /** Policies whose reference signature matched the observation. */
    std::vector<ReplacementPolicy> matches;
    /** The observed signature (for reporting mismatches). */
    ProbeSignature observed;

    bool unique() const { return matches.size() == 1; }

    /** The identified policy; requires unique(). */
    ReplacementPolicy identified() const { return matches.front(); }
};

/** Run the battery against @p factory and collect the signature. */
ProbeSignature probeSignature(const ProbeTargetFactory &factory);

/**
 * Identify the replacement policy behind @p factory: compare its
 * signature against reference signatures of every implemented policy
 * (computed through the simulator's own caches with @p seed for the
 * random policy). The reference signatures are required to be
 * pairwise distinct — a collision throws an internal TopoError, since
 * it means the battery can no longer tell two implemented policies
 * apart.
 */
PolicyProbeResult
inferPolicy(const ProbeTargetFactory &factory,
            std::uint64_t seed = kDefaultPolicySeed);

} // namespace topo

#endif // TOPO_CACHE_POLICY_PROBE_HH
