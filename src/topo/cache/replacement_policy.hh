/**
 * @file
 * Replacement policies for the set-associative cache model.
 *
 * Each policy is a small value type holding the per-set replacement
 * metadata (recency stamps, PLRU tree bits, RRPV counters, FIFO
 * hands, or an RNG cursor) next to nothing else; PolicyCache composes
 * one with the tag array. The concept a policy must satisfy:
 *
 *   Policy(sets, ways, seed)     construct cold metadata
 *   void onHit(set, way)         an access hit this way
 *   uint32_t victimWay(set)      choose a victim; called only when
 *                                every way of the set holds a valid
 *                                line (cold fills take the lowest
 *                                invalid way without consulting the
 *                                policy, see PolicyCache::access)
 *   void onFill(set, way)        a miss filled this way
 *   void reset()                 return to the cold state (including
 *                                reseeding any RNG)
 *   state serialization          stateWordCount / appendStateWords /
 *                                restoreStateWords, for checkpoints
 *   kName                        CLI / report spelling
 *   kKind                        the ReplacementPolicy enumerator
 *   kRepeatElisionSound          whether the replay's repeat-elision
 *                                shortcut is exact under this policy
 *
 * kRepeatElisionSound gates the simulator's batched-replay shortcut
 * `passes = len <= lineCount() ? 1 : repeats` (see
 * PolicyCache::accessRunBatch). The shortcut is exact iff one pass
 * over a run of at most lineCount() consecutive lines (a) leaves
 * every line of the run resident, so the repeated pass is all hits,
 * and (b) the all-hit pass restores the replacement metadata to the
 * state after the first pass, so eliding it cannot change any later
 * access. Both halves are true-LRU-specific:
 *
 *  - TrueLRU: sound. At most ways() lines of the run land in any set,
 *    and an LRU set never evicts one of its ways() most recently
 *    touched lines, so pass one leaves the whole run resident (a).
 *    The repeated pass hits every line and re-touches each set's
 *    lines in the same relative order, reproducing the identical
 *    recency ordering (absolute stamp values advance, but victimWay
 *    is a pure argmin within the set, so only the ordering is ever
 *    consulted) (b).
 *  - TreePLRU: UNSOUND. The tree only protects the log2(ways)+1 most
 *    recently touched ways (an 8-way tree guarantees 4), so a pass
 *    can evict a line of its own run and the repeat is not all-hits.
 *  - SRRIP: UNSOUND twice over. Aging on a miss can push a line the
 *    pass itself inserted (RRPV 2) out before long-resident RRPV-0
 *    lines, breaking (a); and even an all-hit pass promotes every
 *    touched line to RRPV 0, changing state that the first pass left
 *    at RRPV 2, breaking (b).
 *  - FIFO: UNSOUND. Hits do not refresh insertion order, so a line of
 *    the run that was already resident keeps its old queue position
 *    and can be evicted by the same pass's fills, breaking (a).
 *  - Random: UNSOUND. A drawn victim can be a line the pass itself
 *    inserted, breaking (a), and each draw advances the RNG, so even
 *    an all-hit outcome for the lines is not state-neutral once a
 *    miss occurs elsewhere in the run.
 *
 * The direct-mapped model keeps its unconditional shortcut: with one
 * way there is no replacement choice — at most frameCount()
 * consecutive lines occupy distinct frames, and a repeated pass
 * performs only idempotent tag stores.
 */

#ifndef TOPO_CACHE_REPLACEMENT_POLICY_HH
#define TOPO_CACHE_REPLACEMENT_POLICY_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace topo
{

/** Replacement policy selector carried by CacheConfig. */
enum class ReplacementPolicy : std::uint8_t
{
    kLru = 0,
    kPlru,
    kSrrip,
    kFifo,
    kRandom,
};

/** Every implemented policy, in enum order (probe/report iteration). */
inline constexpr std::array<ReplacementPolicy, 5>
    kAllReplacementPolicies = {
        ReplacementPolicy::kLru, ReplacementPolicy::kPlru,
        ReplacementPolicy::kSrrip, ReplacementPolicy::kFifo,
        ReplacementPolicy::kRandom};

/**
 * Default CacheConfig::policy_seed (the library-wide Rng default), so
 * seeded-random runs are reproducible without any flag.
 */
inline constexpr std::uint64_t kDefaultPolicySeed =
    0x9e3779b97f4a7c15ULL;

/** CLI / report spelling of a policy ("lru", "plru", ...). */
const char *replacementPolicyName(ReplacementPolicy policy);

/** Parse a --policy=NAME value; throws a user TopoError on unknowns. */
ReplacementPolicy parseReplacementPolicy(const std::string &name);

/**
 * True LRU via per-way recency stamps and a per-set access clock: a
 * touch stamps the way with the set's next clock tick, the victim is
 * the minimum stamp. Equivalent hit/miss/victim behaviour to the
 * classic MRU-ordered rotation at one store per hit instead of a
 * rotate.
 */
class TrueLruPolicy
{
  public:
    /** Sound — see the proof at the top of this file. */
    static constexpr bool kRepeatElisionSound = true;
    static constexpr ReplacementPolicy kKind = ReplacementPolicy::kLru;
    static constexpr const char *kName = "lru";

    TrueLruPolicy(std::uint32_t sets, std::uint32_t ways,
                  std::uint64_t /*seed*/)
        : ways_(ways),
          stamps_(static_cast<std::size_t>(sets) * ways, 0),
          clock_(sets, 0)
    {}

    void
    onHit(std::uint32_t set, std::uint32_t way)
    {
        stamps_[static_cast<std::size_t>(set) * ways_ + way] =
            ++clock_[set];
    }

    std::uint32_t
    victimWay(std::uint32_t set) const
    {
        const std::uint64_t *stamps =
            &stamps_[static_cast<std::size_t>(set) * ways_];
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (stamps[w] < stamps[victim])
                victim = w;
        }
        return victim;
    }

    void onFill(std::uint32_t set, std::uint32_t way) { onHit(set, way); }

    void
    reset()
    {
        stamps_.assign(stamps_.size(), 0);
        clock_.assign(clock_.size(), 0);
    }

    std::size_t
    stateWordCount() const
    {
        return stamps_.size() + clock_.size();
    }

    void
    appendStateWords(std::vector<std::uint64_t> &words) const
    {
        words.insert(words.end(), stamps_.begin(), stamps_.end());
        words.insert(words.end(), clock_.begin(), clock_.end());
    }

    void
    restoreStateWords(const std::uint64_t *words)
    {
        stamps_.assign(words, words + stamps_.size());
        clock_.assign(words + stamps_.size(),
                      words + stamps_.size() + clock_.size());
    }

  private:
    std::uint32_t ways_;
    std::vector<std::uint64_t> stamps_;
    std::vector<std::uint64_t> clock_;
};

/**
 * Tree-PLRU: one bit per internal node of a binary tree over the
 * ways; a touch flips the path bits away from the touched way, the
 * victim follows the bits. Requires a power-of-two associativity of
 * at most 64 so one word holds a set's tree (enforced by
 * CacheConfig::validate).
 */
class TreePlruPolicy
{
  public:
    /** Unsound: protects only log2(ways)+1 recent ways (see header). */
    static constexpr bool kRepeatElisionSound = false;
    static constexpr ReplacementPolicy kKind = ReplacementPolicy::kPlru;
    static constexpr const char *kName = "plru";

    TreePlruPolicy(std::uint32_t sets, std::uint32_t ways,
                   std::uint64_t /*seed*/)
        : ways_(ways), levels_(0), bits_(sets, 0)
    {
        for (std::uint32_t w = ways; w > 1; w >>= 1)
            ++levels_;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way)
    {
        std::uint64_t bits = bits_[set];
        std::uint32_t node = 1;
        for (std::uint32_t level = levels_; level > 0; --level) {
            const std::uint32_t dir = (way >> (level - 1)) & 1u;
            const std::uint64_t bit = std::uint64_t{1} << (node - 1);
            // Point the node away from the touched child.
            bits = dir != 0 ? bits & ~bit : bits | bit;
            node = node * 2 + dir;
        }
        bits_[set] = bits;
    }

    std::uint32_t
    victimWay(std::uint32_t set) const
    {
        const std::uint64_t bits = bits_[set];
        std::uint32_t node = 1;
        for (std::uint32_t level = 0; level < levels_; ++level) {
            const std::uint32_t dir = static_cast<std::uint32_t>(
                (bits >> (node - 1)) & 1u);
            node = node * 2 + dir;
        }
        return node - ways_;
    }

    void onFill(std::uint32_t set, std::uint32_t way) { onHit(set, way); }

    void reset() { bits_.assign(bits_.size(), 0); }

    std::size_t stateWordCount() const { return bits_.size(); }

    void
    appendStateWords(std::vector<std::uint64_t> &words) const
    {
        words.insert(words.end(), bits_.begin(), bits_.end());
    }

    void
    restoreStateWords(const std::uint64_t *words)
    {
        bits_.assign(words, words + bits_.size());
    }

  private:
    std::uint32_t ways_;
    std::uint32_t levels_;
    std::vector<std::uint64_t> bits_;
};

/**
 * Static RRIP (SRRIP-HP): 2-bit re-reference prediction values,
 * insert at 2 ("long"), promote to 0 on hit, evict the first way at 3
 * ("distant"), aging every way until one reaches 3.
 */
class SrripPolicy
{
  public:
    /** Unsound: aging evicts same-pass fills; hits rewrite RRPVs. */
    static constexpr bool kRepeatElisionSound = false;
    static constexpr ReplacementPolicy kKind = ReplacementPolicy::kSrrip;
    static constexpr const char *kName = "srrip";

    static constexpr std::uint8_t kMaxRrpv = 3;
    static constexpr std::uint8_t kInsertRrpv = 2;

    SrripPolicy(std::uint32_t sets, std::uint32_t ways,
                std::uint64_t /*seed*/)
        : ways_(ways),
          rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv)
    {}

    void
    onHit(std::uint32_t set, std::uint32_t way)
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
    }

    std::uint32_t
    victimWay(std::uint32_t set)
    {
        std::uint8_t *rrpv =
            &rrpv_[static_cast<std::size_t>(set) * ways_];
        for (;;) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                if (rrpv[w] == kMaxRrpv)
                    return w;
            }
            for (std::uint32_t w = 0; w < ways_; ++w)
                ++rrpv[w];
        }
    }

    void
    onFill(std::uint32_t set, std::uint32_t way)
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] =
            kInsertRrpv;
    }

    void reset() { rrpv_.assign(rrpv_.size(), kMaxRrpv); }

    std::size_t stateWordCount() const { return rrpv_.size(); }

    void
    appendStateWords(std::vector<std::uint64_t> &words) const
    {
        words.insert(words.end(), rrpv_.begin(), rrpv_.end());
    }

    void
    restoreStateWords(const std::uint64_t *words)
    {
        for (std::size_t i = 0; i < rrpv_.size(); ++i)
            rrpv_[i] = static_cast<std::uint8_t>(words[i]);
    }

  private:
    std::uint32_t ways_;
    std::vector<std::uint8_t> rrpv_;
};

/**
 * FIFO via a per-set clock hand. Cold fills take ways in index order
 * (PolicyCache fills the lowest invalid way), which matches the
 * hand's sweep, so the hand always points at the oldest insertion;
 * hits deliberately do not move it.
 */
class FifoPolicy
{
  public:
    /** Unsound: hits do not refresh insertion order (see header). */
    static constexpr bool kRepeatElisionSound = false;
    static constexpr ReplacementPolicy kKind = ReplacementPolicy::kFifo;
    static constexpr const char *kName = "fifo";

    FifoPolicy(std::uint32_t sets, std::uint32_t ways,
               std::uint64_t /*seed*/)
        : ways_(ways), hand_(sets, 0)
    {}

    void onHit(std::uint32_t /*set*/, std::uint32_t /*way*/) {}

    std::uint32_t
    victimWay(std::uint32_t set) const
    {
        return hand_[set];
    }

    void
    onFill(std::uint32_t set, std::uint32_t way)
    {
        hand_[set] = (way + 1) % ways_;
    }

    void reset() { hand_.assign(hand_.size(), 0); }

    std::size_t stateWordCount() const { return hand_.size(); }

    void
    appendStateWords(std::vector<std::uint64_t> &words) const
    {
        words.insert(words.end(), hand_.begin(), hand_.end());
    }

    void
    restoreStateWords(const std::uint64_t *words)
    {
        for (std::size_t i = 0; i < hand_.size(); ++i)
            hand_[i] = static_cast<std::uint32_t>(words[i]);
    }

  private:
    std::uint32_t ways_;
    std::vector<std::uint32_t> hand_;
};

/**
 * Seeded random replacement: one SplitMix64 cursor per cache
 * instance, advanced only when a full set must choose a victim (cold
 * fills draw nothing, keeping warm-up deterministic across policies).
 * The cursor is part of the checkpoint state and reseeds on reset(),
 * so runs are bit-identical for a given CacheConfig::policy_seed
 * regardless of --jobs (each simulation owns its cache instance).
 */
class RandomPolicy
{
  public:
    /** Unsound: a draw can evict the current pass's own fill. */
    static constexpr bool kRepeatElisionSound = false;
    static constexpr ReplacementPolicy kKind =
        ReplacementPolicy::kRandom;
    static constexpr const char *kName = "random";

    RandomPolicy(std::uint32_t /*sets*/, std::uint32_t ways,
                 std::uint64_t seed)
        : ways_(ways), seed_(seed), state_(seed)
    {}

    void onHit(std::uint32_t /*set*/, std::uint32_t /*way*/) {}

    std::uint32_t
    victimWay(std::uint32_t /*set*/)
    {
        // SplitMix64 step; unbiased-enough range reduction by the
        // high multiply (ways is tiny next to 2^64).
        state_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return static_cast<std::uint32_t>(
            (static_cast<unsigned __int128>(z) * ways_) >> 64);
    }

    void onFill(std::uint32_t /*set*/, std::uint32_t /*way*/) {}

    void reset() { state_ = seed_; }

    std::size_t stateWordCount() const { return 1; }

    void
    appendStateWords(std::vector<std::uint64_t> &words) const
    {
        words.push_back(state_);
    }

    void restoreStateWords(const std::uint64_t *words)
    {
        state_ = words[0];
    }

  private:
    std::uint32_t ways_;
    std::uint64_t seed_;
    std::uint64_t state_;
};

} // namespace topo

#endif // TOPO_CACHE_REPLACEMENT_POLICY_HH
