#include "topo/cache/taxonomy.hh"

#include <algorithm>

#include "topo/util/error.hh"

namespace topo
{

// --- OrderStatTree -------------------------------------------------

std::uint32_t
OrderStatTree::allocNode(std::uint64_t key)
{
    std::uint32_t n;
    if (free_head_ != kNil) {
        n = free_head_;
        free_head_ = nodes_[n].left;
    } else {
        n = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
    }
    nodes_[n] = Node{key, kNil, kNil, 1, 1};
    return n;
}

void
OrderStatTree::freeNode(std::uint32_t n)
{
    nodes_[n].left = free_head_;
    free_head_ = n;
}

void
OrderStatTree::pull(std::uint32_t n)
{
    Node &node = nodes_[n];
    node.size = 1 + sizeOf(node.left) + sizeOf(node.right);
    node.height = static_cast<std::int8_t>(
        1 + std::max(heightOf(node.left), heightOf(node.right)));
}

std::uint32_t
OrderStatTree::rotateLeft(std::uint32_t n)
{
    const std::uint32_t r = nodes_[n].right;
    nodes_[n].right = nodes_[r].left;
    nodes_[r].left = n;
    pull(n);
    pull(r);
    return r;
}

std::uint32_t
OrderStatTree::rotateRight(std::uint32_t n)
{
    const std::uint32_t l = nodes_[n].left;
    nodes_[n].left = nodes_[l].right;
    nodes_[l].right = n;
    pull(n);
    pull(l);
    return l;
}

std::uint32_t
OrderStatTree::rebalance(std::uint32_t n)
{
    pull(n);
    const int balance = heightOf(nodes_[n].left) -
                        heightOf(nodes_[n].right);
    if (balance > 1) {
        const std::uint32_t l = nodes_[n].left;
        if (heightOf(nodes_[l].left) < heightOf(nodes_[l].right))
            nodes_[n].left = rotateLeft(l);
        return rotateRight(n);
    }
    if (balance < -1) {
        const std::uint32_t r = nodes_[n].right;
        if (heightOf(nodes_[r].right) < heightOf(nodes_[r].left))
            nodes_[n].right = rotateRight(r);
        return rotateLeft(n);
    }
    return n;
}

std::uint32_t
OrderStatTree::insertRec(std::uint32_t n, std::uint32_t fresh)
{
    if (n == kNil)
        return fresh;
    if (nodes_[fresh].key < nodes_[n].key)
        nodes_[n].left = insertRec(nodes_[n].left, fresh);
    else
        nodes_[n].right = insertRec(nodes_[n].right, fresh);
    return rebalance(n);
}

void
OrderStatTree::insert(std::uint64_t key)
{
    // Allocate before descending: insertRec holds node indices across
    // recursive calls, so the vector must not grow mid-descent.
    const std::uint32_t fresh = allocNode(key);
    root_ = insertRec(root_, fresh);
}

std::uint32_t
OrderStatTree::detachMin(std::uint32_t n, std::uint32_t &min_out)
{
    if (nodes_[n].left == kNil) {
        min_out = n;
        return nodes_[n].right;
    }
    nodes_[n].left = detachMin(nodes_[n].left, min_out);
    return rebalance(n);
}

std::uint32_t
OrderStatTree::eraseRec(std::uint32_t n, std::uint64_t key)
{
    // Not require(): this sits on the per-access hot path, and the
    // message string must only be built when the tree is misused.
    if (n == kNil)
        fail("OrderStatTree: erase of absent key");
    if (key < nodes_[n].key) {
        nodes_[n].left = eraseRec(nodes_[n].left, key);
    } else if (key > nodes_[n].key) {
        nodes_[n].right = eraseRec(nodes_[n].right, key);
    } else {
        const std::uint32_t left = nodes_[n].left;
        const std::uint32_t right = nodes_[n].right;
        freeNode(n);
        if (right == kNil)
            return left;
        std::uint32_t successor = kNil;
        const std::uint32_t rest = detachMin(right, successor);
        nodes_[successor].left = left;
        nodes_[successor].right = rest;
        return rebalance(successor);
    }
    return rebalance(n);
}

void
OrderStatTree::erase(std::uint64_t key)
{
    root_ = eraseRec(root_, key);
}

std::uint64_t
OrderStatTree::countGreater(std::uint64_t key) const
{
    std::uint64_t count = 0;
    std::uint32_t n = root_;
    while (n != kNil) {
        const Node &node = nodes_[n];
        if (key < node.key) {
            count += 1 + sizeOf(node.right);
            n = node.left;
        } else if (key > node.key) {
            n = node.right;
        } else {
            count += sizeOf(node.right);
            return count;
        }
    }
    fail("OrderStatTree: countGreater of absent key");
}

std::string
reuseBucketMetricName(std::size_t bucket)
{
    require(bucket < kReuseBucketCount,
            "reuseBucketMetricName: bucket out of range");
    if (bucket == kReuseColdBucket)
        return "taxonomy.reuse.cold";
    std::string name = "taxonomy.reuse.b";
    name += static_cast<char>('0' + bucket / 10);
    name += static_cast<char>('0' + bucket % 10);
    return name;
}

std::string
reuseBucketLabel(std::size_t bucket)
{
    require(bucket < kReuseBucketCount,
            "reuseBucketLabel: bucket out of range");
    if (bucket == kReuseColdBucket)
        return "cold";
    if (bucket == 0)
        return "0";
    if (bucket == kReuseColdBucket - 1)
        return ">= " + std::to_string(1ULL << (bucket - 1));
    return "[" + std::to_string(1ULL << (bucket - 1)) + ", " +
           std::to_string(1ULL << bucket) + ")";
}

// --- TaxonomySink --------------------------------------------------

TaxonomySink::TaxonomySink(const Program &program,
                           std::uint32_t program_line_count,
                           const CacheConfig &config)
    : program_(&program), shadow_lines_(config.lineCount())
{
    require(shadow_lines_ > 0,
            "TaxonomySink: cache must hold at least one line");
    last_ts_.assign(program_line_count, 0);
    compulsory_by_proc_.assign(program.procCount(), 0);
    capacity_by_proc_.assign(program.procCount(), 0);
    conflict_by_proc_.assign(program.procCount(), 0);
}

std::vector<ProcTaxonomy>
TaxonomySink::topProcs(std::size_t k) const
{
    std::vector<ProcTaxonomy> all;
    for (std::size_t i = 0; i < conflict_by_proc_.size(); ++i) {
        const ProcTaxonomy row{static_cast<ProcId>(i),
                               compulsory_by_proc_[i],
                               capacity_by_proc_[i],
                               conflict_by_proc_[i]};
        if (row.compulsory == 0 && row.capacity == 0 &&
            row.conflict == 0)
            continue;
        all.push_back(row);
    }
    std::sort(all.begin(), all.end(),
              [](const ProcTaxonomy &a, const ProcTaxonomy &b) {
                  if (a.conflict != b.conflict)
                      return a.conflict > b.conflict;
                  return a.proc < b.proc;
              });
    if (all.size() > k)
        all.resize(k);
    return all;
}

JsonValue
TaxonomySink::toJson(std::size_t top_k) const
{
    JsonValue root = JsonValue::object();
    root.set("compulsory",
             JsonValue::number(static_cast<double>(compulsory_)));
    root.set("capacity",
             JsonValue::number(static_cast<double>(capacity_)));
    root.set("conflict",
             JsonValue::number(static_cast<double>(conflict_)));
    root.set("shadow_lines",
             JsonValue::number(static_cast<double>(shadow_lines_)));

    JsonValue hist = JsonValue::array();
    for (std::uint64_t count : reuse_hist_)
        hist.push(JsonValue::number(static_cast<double>(count)));
    root.set("reuse_hist", std::move(hist));

    JsonValue procs = JsonValue::array();
    for (const ProcTaxonomy &row : topProcs(top_k)) {
        JsonValue entry = JsonValue::object();
        entry.set("proc",
                  JsonValue::string(program_->proc(row.proc).name));
        entry.set("compulsory",
                  JsonValue::number(
                      static_cast<double>(row.compulsory)));
        entry.set("capacity", JsonValue::number(
                                  static_cast<double>(row.capacity)));
        entry.set("conflict", JsonValue::number(
                                  static_cast<double>(row.conflict)));
        procs.push(std::move(entry));
    }
    root.set("top_procs", std::move(procs));
    return root;
}

} // namespace topo
