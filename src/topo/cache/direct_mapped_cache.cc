#include "topo/cache/direct_mapped_cache.hh"

#include <limits>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

DirectMappedCache::DirectMappedCache(const CacheConfig &config)
    : config_(config)
{
    config_.validate();
    require(config_.associativity == 1,
            "DirectMappedCache: configuration is not direct-mapped");
    frames_.assign(config_.lineCount(),
                   std::numeric_limits<std::uint64_t>::max());
    mask_ = isPowerOfTwo(frames_.size()) ? frames_.size() - 1 : 0;
}

void
DirectMappedCache::reset()
{
    frames_.assign(frames_.size(),
                   std::numeric_limits<std::uint64_t>::max());
}

void
DirectMappedCache::restoreStateWords(
    const std::vector<std::uint64_t> &words)
{
    requireData(words.size() == frames_.size(),
                "DirectMappedCache: checkpoint state size mismatch "
                "(different cache geometry?)");
    frames_ = words;
}

std::uint64_t
DirectMappedCache::validLineCount() const
{
    std::uint64_t valid = 0;
    for (const std::uint64_t frame : frames_) {
        if (frame != kInvalidFrame)
            ++valid;
    }
    return valid;
}

} // namespace topo
