/**
 * @file
 * TaxonomySink: 3C miss classification + reuse-distance profiling for
 * the cache simulator.
 *
 * The paper's claim is that temporal-ordering placement removes
 * *conflict* misses specifically, so the observatory must say which
 * kind of miss each layout removes. The sink maintains a shadow
 * fully-associative LRU model of the same capacity as the real cache
 * and classifies every real-cache miss (Hill's taxonomy, per-miss
 * form):
 *
 *  - compulsory: first reference to the line, ever;
 *  - capacity:   the FA shadow missed too (stack distance >= C), so
 *                no placement at this capacity could have hit;
 *  - conflict:   the shadow hit but the real geometry missed — the
 *                layout's fault, and the bucket placement can shrink.
 *
 * The shadow is driven by Mattson stack distances: an FA-LRU cache of
 * C lines hits exactly when the reuse distance (distinct lines touched
 * since the previous reference) is < C. Distances come from Olken's
 * algorithm — an order-statistic tree over last-access timestamps,
 * O(log n) per access — and double as a log2-bucketed reuse-distance
 * histogram, the per-window form of which is the interval signature
 * ROADMAP item 3 consumes.
 *
 * Distances are computed over *program* line ids rather than placed
 * addresses: layouts are validated non-overlapping, so the id->address
 * map is a bijection and the distance sequence is identical — which is
 * also why the histogram and the compulsory count are layout-invariant
 * while the conflict/capacity split moves with the layout. All state
 * is sized at construction (O(program lines) + tree nodes, one per
 * distinct line); the steady-state record() path is allocation-free.
 */

#ifndef TOPO_CACHE_TAXONOMY_HH
#define TOPO_CACHE_TAXONOMY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/obs/json.hh"
#include "topo/obs/timeline.hh"
#include "topo/program/program.hh"

namespace topo
{

/**
 * Size-augmented AVL tree of distinct uint64 keys (order-statistic
 * tree). Nodes live in one contiguous vector with a free list, so a
 * steady-state erase/insert cycle never allocates. Supports exactly
 * what Olken's algorithm needs: insert a fresh (monotonically larger)
 * key, erase a known-present key, and count keys greater than a
 * known-present key — that count *is* the reuse distance.
 */
class OrderStatTree
{
  public:
    /** Insert @p key (must not be present). */
    void insert(std::uint64_t key);

    /** Erase @p key (must be present). */
    void erase(std::uint64_t key);

    /** Number of keys strictly greater than @p key (must be present). */
    std::uint64_t countGreater(std::uint64_t key) const;

    /** Number of keys in the tree. */
    std::uint64_t size() const
    {
        return root_ == kNil ? 0 : nodes_[root_].size;
    }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    struct Node
    {
        std::uint64_t key;
        std::uint32_t left;
        std::uint32_t right;
        std::uint32_t size;
        std::int8_t height;
    };

    std::uint32_t allocNode(std::uint64_t key);
    void freeNode(std::uint32_t n);
    std::int8_t heightOf(std::uint32_t n) const
    {
        return n == kNil ? std::int8_t{0} : nodes_[n].height;
    }
    std::uint32_t sizeOf(std::uint32_t n) const
    {
        return n == kNil ? 0u : nodes_[n].size;
    }
    void pull(std::uint32_t n);
    std::uint32_t rotateLeft(std::uint32_t n);
    std::uint32_t rotateRight(std::uint32_t n);
    std::uint32_t rebalance(std::uint32_t n);
    std::uint32_t insertRec(std::uint32_t n, std::uint32_t fresh);
    std::uint32_t eraseRec(std::uint32_t n, std::uint64_t key);
    std::uint32_t detachMin(std::uint32_t n, std::uint32_t &min_out);

    std::vector<Node> nodes_;
    std::uint32_t root_ = kNil;
    std::uint32_t free_head_ = kNil;
};

/**
 * Stable MetricsRegistry counter name for reuse-distance bucket @p b:
 * "taxonomy.reuse.b00" .. "taxonomy.reuse.b32", "taxonomy.reuse.cold".
 */
std::string reuseBucketMetricName(std::size_t bucket);

/**
 * Human-readable stack-distance range for bucket @p b: "0",
 * "[2^(b-1), 2^b)" rendered as decimal bounds, or "cold" for the
 * first-touch bucket.
 */
std::string reuseBucketLabel(std::size_t bucket);

/** Aggregated 3C tallies for one procedure. */
struct ProcTaxonomy
{
    ProcId proc = kInvalidProc;
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    std::uint64_t conflict = 0;
};

/** 3C classifier + reuse-distance profiler for one simulation. */
class TaxonomySink
{
  public:
    /**
     * @param program            Procedure inventory (per-proc tallies).
     * @param program_line_count Dense program line id space of the
     *                           fetch stream being replayed.
     * @param config             Real cache geometry; the FA shadow is
     *                           sized to config.lineCount().
     */
    TaxonomySink(const Program &program,
                 std::uint32_t program_line_count,
                 const CacheConfig &config);

    /**
     * Classify one fetch (hot path): @p proc touched program line
     * @p line_id; @p hit says what the *real* cache did. Returns the
     * classification + reuse bucket for window-level accounting.
     */
    TaxonomyEvent
    record(ProcId proc, std::uint32_t line_id, bool hit)
    {
        TaxonomyEvent event;
        const std::uint64_t prev = last_ts_[line_id];
        if (prev == 0) {
            event.reuse_bucket =
                static_cast<std::uint8_t>(kReuseColdBucket);
            if (!hit) {
                event.miss_class = MissClass::kCompulsory;
                ++compulsory_;
                ++compulsory_by_proc_[proc];
            }
        } else {
            const std::uint64_t distance = tree_.countGreater(prev);
            event.reuse_bucket = bucketOf(distance);
            tree_.erase(prev);
            if (!hit) {
                if (distance < shadow_lines_) {
                    event.miss_class = MissClass::kConflict;
                    ++conflict_;
                    ++conflict_by_proc_[proc];
                } else {
                    event.miss_class = MissClass::kCapacity;
                    ++capacity_;
                    ++capacity_by_proc_[proc];
                }
            }
        }
        ++now_;
        tree_.insert(now_);
        last_ts_[line_id] = now_;
        ++reuse_hist_[event.reuse_bucket];
        return event;
    }

    /** Log2 bucket for stack distance @p d (0 -> 0, else bit width). */
    static std::uint8_t
    bucketOf(std::uint64_t d)
    {
        if (d == 0)
            return 0;
        const int width = std::bit_width(d);
        return static_cast<std::uint8_t>(width < 33 ? width : 32);
    }

    std::uint64_t compulsory() const { return compulsory_; }
    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t conflict() const { return conflict_; }
    std::uint64_t classifiedMisses() const
    {
        return compulsory_ + capacity_ + conflict_;
    }

    /** Shadow (== real) cache capacity in lines. */
    std::uint64_t shadowLines() const { return shadow_lines_; }

    /** Full-run reuse-distance histogram (log2 buckets + cold). */
    const std::array<std::uint64_t, kReuseBucketCount> &
    reuseHistogram() const
    {
        return reuse_hist_;
    }

    const std::vector<std::uint64_t> &compulsoryByProc() const
    {
        return compulsory_by_proc_;
    }
    const std::vector<std::uint64_t> &capacityByProc() const
    {
        return capacity_by_proc_;
    }
    const std::vector<std::uint64_t> &conflictByProc() const
    {
        return conflict_by_proc_;
    }

    /**
     * The @p k procedures with the most conflict misses, descending
     * (ties broken by procedure id for determinism). Procedures with
     * zero misses of any class are omitted.
     */
    std::vector<ProcTaxonomy> topProcs(std::size_t k) const;

    /**
     * JSON summary: 3C totals, reuse-distance histogram, and the top
     * @p top_k conflict-heavy procedures (names resolved).
     */
    JsonValue toJson(std::size_t top_k = 16) const;

  private:
    const Program *program_;
    std::uint64_t shadow_lines_;
    /** Last access timestamp per program line; 0 = never touched. */
    std::vector<std::uint64_t> last_ts_;
    OrderStatTree tree_;
    std::uint64_t now_ = 0;
    std::uint64_t compulsory_ = 0;
    std::uint64_t capacity_ = 0;
    std::uint64_t conflict_ = 0;
    std::array<std::uint64_t, kReuseBucketCount> reuse_hist_{};
    std::vector<std::uint64_t> compulsory_by_proc_;
    std::vector<std::uint64_t> capacity_by_proc_;
    std::vector<std::uint64_t> conflict_by_proc_;
};

} // namespace topo

#endif // TOPO_CACHE_TAXONOMY_HH
