/**
 * @file
 * Layout miss-rate simulation: replay a FetchStream against a layout.
 *
 * This is the measurement instrument of every experiment in the paper:
 * given a layout (procedure base addresses) and the line-granularity
 * reference stream, count instruction-cache misses.
 */

#ifndef TOPO_CACHE_SIMULATE_HH
#define TOPO_CACHE_SIMULATE_HH

#include <cstdint>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/program/layout.hh"
#include "topo/trace/fetch_stream.hh"

namespace topo
{

/** Result of a cache simulation. */
struct SimResult
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Valid lines displaced by misses (cold fills excluded). */
    std::uint64_t evictions = 0;
    /** Per-procedure miss attribution (empty unless requested). */
    std::vector<std::uint64_t> misses_by_proc;

    /** Miss rate in [0, 1]; 0 when there were no accesses. */
    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * Simulate a fetch stream against a layout.
 *
 * @param program       Procedure inventory.
 * @param layout        Complete layout (validated by the caller or not;
 *                      base addresses are read directly).
 * @param stream        Line-granularity reference stream; its line size
 *                      must match @p config.
 * @param config        Cache geometry (any associativity).
 * @param attribute     When true, fill SimResult::misses_by_proc.
 */
SimResult simulateLayout(const Program &program, const Layout &layout,
                         const FetchStream &stream, const CacheConfig &config,
                         bool attribute = false);

/**
 * Miss rate shortcut for harness code.
 */
double layoutMissRate(const Program &program, const Layout &layout,
                      const FetchStream &stream, const CacheConfig &config);

} // namespace topo

#endif // TOPO_CACHE_SIMULATE_HH
