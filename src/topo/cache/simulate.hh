/**
 * @file
 * Layout miss-rate simulation: replay a FetchStream against a layout.
 *
 * This is the measurement instrument of every experiment in the paper:
 * given a layout (procedure base addresses) and the line-granularity
 * reference stream, count instruction-cache misses.
 *
 * Long replays (the paper's traces reach 146M blocks) can be
 * checkpointed and resumed bit-identically: a SimControl names a
 * checkpoint file and cadence, and a loaded SimCheckpoint restores
 * the cursor, counters, and raw cache state. Everything else the
 * replay consumes is re-derived from the tool's inputs and guarded by
 * a fingerprint.
 */

#ifndef TOPO_CACHE_SIMULATE_HH
#define TOPO_CACHE_SIMULATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/program/layout.hh"
#include "topo/resilience/checkpoint.hh"
#include "topo/trace/fetch_stream.hh"

namespace topo
{

class AttributionSink;
class TaxonomySink;
class TimelineRecorder;

/** Result of a cache simulation. */
struct SimResult
{
    /** References accounted for (equals the cursor; the full stream
     *  length when the run was not stopped early). */
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Valid lines displaced by misses (cold fills excluded). */
    std::uint64_t evictions = 0;
    /** Per-procedure miss attribution (empty unless requested). */
    std::vector<std::uint64_t> misses_by_proc;
    /** False when the replay stopped at SimControl::stop_after. */
    bool completed = true;

    /** Miss rate in [0, 1]; 0 when there were no accesses. */
    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * Optional observation sinks fed by the replay loop. Attaching any
 * sink selects a separate instrumented instantiation of the loop, so
 * the default (unobserved) path is byte-identical with or without
 * this feature compiled in. Observers do not compose with
 * checkpoint/resume: their state is not checkpointed, so a resumed
 * run would attribute only the tail.
 */
struct SimObservers
{
    /** Per-procedure / per-set / conflict-matrix attribution. */
    AttributionSink *attribution = nullptr;
    /** 3C miss classification + reuse-distance profiling. */
    TaxonomySink *taxonomy = nullptr;
    /** Windowed miss-rate / working-set sampling. */
    TimelineRecorder *timeline = nullptr;

    bool
    any() const
    {
        return attribution != nullptr || taxonomy != nullptr ||
               timeline != nullptr;
    }
};

/** Checkpoint/resume directives for one simulation. */
struct SimControl
{
    /** Restore this state before replaying (fingerprint-checked). */
    const SimCheckpoint *resume = nullptr;
    /** Write checkpoints here; empty disables checkpointing. */
    std::string checkpoint_path;
    /** References between periodic checkpoints (0 = only at stop). */
    std::uint64_t checkpoint_every = 0;
    /**
     * Stop after this absolute reference cursor, writing a final
     * checkpoint (0 = run to the end of the stream). Models a
     * preemption point for tests and operators.
     */
    std::uint64_t stop_after = 0;
};

/**
 * Fingerprint of everything that determines a replay: cache geometry,
 * layout base lines, stream length, and the attribution flag. Stored
 * in checkpoints so --resume refuses state from a different run.
 */
std::uint64_t simFingerprint(const Program &program, const Layout &layout,
                             const FetchStream &stream,
                             const CacheConfig &config, bool attribute);

/**
 * Simulate a fetch stream against a layout.
 *
 * @param program       Procedure inventory.
 * @param layout        Complete layout (validated by the caller or not;
 *                      base addresses are read directly).
 * @param stream        Line-granularity reference stream; its line size
 *                      must match @p config.
 * @param config        Cache geometry (any associativity).
 * @param attribute     When true, fill SimResult::misses_by_proc.
 * @param control       Optional checkpoint/resume directives.
 * @param observers     Optional attribution/timeline sinks (mutually
 *                      exclusive with @p control).
 */
SimResult simulateLayout(const Program &program, const Layout &layout,
                         const FetchStream &stream, const CacheConfig &config,
                         bool attribute = false,
                         const SimControl *control = nullptr,
                         const SimObservers *observers = nullptr);

/**
 * Miss rate shortcut for harness code.
 */
double layoutMissRate(const Program &program, const Layout &layout,
                      const FetchStream &stream, const CacheConfig &config);

} // namespace topo

#endif // TOPO_CACHE_SIMULATE_HH
