#include "topo/cache/policy_probe.hh"

#include "topo/cache/direct_mapped_cache.hh"
#include "topo/cache/set_associative_cache.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** PolicyProbeTarget over one of the simulator's cache models. */
template <typename Cache>
class CacheTarget final : public PolicyProbeTarget
{
  public:
    explicit CacheTarget(const CacheConfig &config) : cache_(config) {}

    bool access(std::uint64_t line_addr) override
    {
        return cache_.access(line_addr);
    }

    void reset() override { cache_.reset(); }

  private:
    Cache cache_;
};

/**
 * The battery's probe geometries. Small on purpose: inference needs
 * eviction decisions, not capacity. All associativities are >= 4
 * (1-way caches have no replacement policy to identify) and powers
 * of two so PLRU is constructible.
 */
const CacheConfig kProbeGeometries[] = {
    CacheConfig{128, 32, 4},  // 1 set x 4 ways
    CacheConfig{256, 32, 8},  // 1 set x 8 ways
    CacheConfig{512, 32, 4},  // 4 sets x 4 ways
};

/** Rounds of the variability experiment (no reset in between). */
constexpr std::uint64_t kVariabilityTrials = 12;

/**
 * Run the battery on one geometry, appending every access outcome to
 * @p bits. Line addresses are multiplied by the set count so the
 * named experiments all land in set 0; the final sweep uses raw
 * addresses to exercise every set (and any cross-set policy state,
 * like the random policy's shared RNG cursor).
 */
void
probeGeometry(PolicyProbeTarget &target, const CacheConfig &config,
              std::vector<bool> &bits)
{
    const std::uint64_t sets = config.setCount();
    const std::uint64_t ways = config.associativity;
    auto touch = [&](std::uint64_t k) {
        bits.push_back(target.access(k * sets));
    };
    auto fill = [&]() {
        for (std::uint64_t k = 0; k < ways; ++k)
            touch(k);
    };

    // Cold fill + re-probe.
    target.reset();
    fill();
    fill();

    // Hit refresh: does touching line 0 protect it from the fresh
    // insert, and in what order do the cascading probe misses evict?
    target.reset();
    fill();
    touch(0);
    touch(ways);
    for (std::uint64_t k = 0; k <= ways; ++k)
        touch(k);

    // Insertion priority: promote all but the last resident line,
    // then insert two fresh lines — a distant-insertion policy
    // (SRRIP) sacrifices its own first insert, a recency policy
    // keeps it.
    target.reset();
    fill();
    for (std::uint64_t k = 0; k + 1 < ways; ++k)
        touch(k);
    touch(ways);
    touch(ways + 1);
    touch(ways);
    touch(ways + 1);
    touch(0);

    // Eviction sweep: a stream of fresh inserts, re-probing the first
    // of them after each — exposes aging dynamics.
    target.reset();
    fill();
    for (std::uint64_t j = 0; j < ways; ++j) {
        touch(2 * ways + j);
        touch(2 * ways);
    }

    // Variability trials: identical evict-and-probe rounds with no
    // reset; deterministic policies settle into a fixed pattern, the
    // random policy's cursor keeps advancing.
    target.reset();
    fill();
    for (std::uint64_t trial = 0; trial < kVariabilityTrials; ++trial) {
        const std::uint64_t base = 100 + trial * ways;
        for (std::uint64_t j = 0; j < ways; ++j)
            touch(base + j);
        touch(base);
    }

    // Raw-address sweep across every set, twice, then one fresh
    // insert per set probed against the set's oldest line.
    target.reset();
    for (std::uint64_t a = 0; a < sets * ways; ++a)
        bits.push_back(target.access(a));
    for (std::uint64_t a = 0; a < sets * ways; ++a)
        bits.push_back(target.access(a));
    for (std::uint64_t a = sets * ways; a < sets * ways + sets; ++a)
        bits.push_back(target.access(a));
    for (std::uint64_t a = 0; a < sets; ++a)
        bits.push_back(target.access(a));
}

} // namespace

std::string
ProbeSignature::describe() const
{
    std::string out;
    out.reserve(bits.size());
    for (const bool bit : bits)
        out.push_back(bit ? '1' : '0');
    return out;
}

std::unique_ptr<PolicyProbeTarget>
makeCacheTarget(const CacheConfig &config)
{
    if (config.associativity == 1) {
        return std::make_unique<CacheTarget<DirectMappedCache>>(
            config);
    }
    switch (config.policy) {
      case ReplacementPolicy::kLru:
        return std::make_unique<
            CacheTarget<PolicyCache<TrueLruPolicy>>>(config);
      case ReplacementPolicy::kPlru:
        return std::make_unique<
            CacheTarget<PolicyCache<TreePlruPolicy>>>(config);
      case ReplacementPolicy::kSrrip:
        return std::make_unique<CacheTarget<PolicyCache<SrripPolicy>>>(
            config);
      case ReplacementPolicy::kFifo:
        return std::make_unique<CacheTarget<PolicyCache<FifoPolicy>>>(
            config);
      case ReplacementPolicy::kRandom:
        return std::make_unique<
            CacheTarget<PolicyCache<RandomPolicy>>>(config);
    }
    failInternal("makeCacheTarget: unknown policy enumerator");
}

ProbeSignature
probeSignature(const ProbeTargetFactory &factory)
{
    ProbeSignature signature;
    for (const CacheConfig &geometry : kProbeGeometries) {
        const std::unique_ptr<PolicyProbeTarget> target =
            factory(geometry);
        require(target != nullptr,
                "probeSignature: target factory returned null");
        probeGeometry(*target, geometry, signature.bits);
    }
    return signature;
}

PolicyProbeResult
inferPolicy(const ProbeTargetFactory &factory, std::uint64_t seed)
{
    PolicyProbeResult result;
    result.observed = probeSignature(factory);

    std::vector<ProbeSignature> references;
    for (const ReplacementPolicy policy : kAllReplacementPolicies) {
        references.push_back(
            probeSignature([policy, seed](const CacheConfig &geometry) {
                CacheConfig config = geometry;
                config.policy = policy;
                config.policy_seed = seed;
                return makeCacheTarget(config);
            }));
    }
    // The battery must keep the implemented policies pairwise
    // distinguishable, or identification below is meaningless.
    for (std::size_t a = 0; a < references.size(); ++a) {
        for (std::size_t b = a + 1; b < references.size(); ++b) {
            if (references[a] == references[b]) {
                failInternal(
                    std::string("inferPolicy: probe battery cannot "
                                "distinguish ") +
                    replacementPolicyName(kAllReplacementPolicies[a]) +
                    " from " +
                    replacementPolicyName(kAllReplacementPolicies[b]));
            }
        }
    }
    for (std::size_t i = 0; i < references.size(); ++i) {
        if (references[i] == result.observed)
            result.matches.push_back(kAllReplacementPolicies[i]);
    }
    return result;
}

} // namespace topo
