/**
 * @file
 * Direct-mapped instruction cache simulator.
 *
 * Tracks one tag per frame. An access presents a global line address
 * (byte address / line size); the simulator reports hit or miss and
 * updates state. Kept minimal and branch-light because the evaluation
 * harness replays tens of millions of accesses per candidate layout.
 */

#ifndef TOPO_CACHE_DIRECT_MAPPED_CACHE_HH
#define TOPO_CACHE_DIRECT_MAPPED_CACHE_HH

#include <cstdint>
#include <vector>

#include "topo/cache/cache_config.hh"

namespace topo
{

/** Direct-mapped cache over global line addresses. */
class DirectMappedCache
{
  public:
    /** Construct for a validated direct-mapped configuration. */
    explicit DirectMappedCache(const CacheConfig &config);

    /**
     * Access a global line address.
     *
     * @param line_addr Byte address divided by the line size.
     * @return True on hit, false on miss (line is then filled).
     */
    bool
    access(std::uint64_t line_addr)
    {
        const std::uint32_t index = mapIndex(line_addr);
        if (frames_[index] == line_addr)
            return true;
        frames_[index] = line_addr;
        return false;
    }

    /**
     * Access with eviction reporting, for the attribution replay path.
     * Identical cache behaviour to access(); additionally reports the
     * set (frame) index the line mapped to and, on a miss that
     * displaced a valid line, that line's address.
     *
     * @param line_addr    Byte address divided by the line size.
     * @param set          Out: frame index of the access.
     * @param victim       Out: displaced line address (miss only).
     * @param victim_valid Out: true when @p victim held a valid line.
     * @return True on hit, false on miss.
     */
    bool
    accessTracked(std::uint64_t line_addr, std::uint32_t &set,
                  std::uint64_t &victim, bool &victim_valid)
    {
        const std::uint32_t index = mapIndex(line_addr);
        set = index;
        if (frames_[index] == line_addr)
            return true;
        victim = frames_[index];
        victim_valid = victim != kInvalidFrame;
        frames_[index] = line_addr;
        return false;
    }

    /** Invalidate all frames. */
    void reset();

    /** Raw frame words for checkpointing (opaque to the caller). */
    const std::vector<std::uint64_t> &stateWords() const
    {
        return frames_;
    }

    /**
     * Restore frame words captured by stateWords() on an identically
     * configured cache; throws TopoError on a size mismatch.
     */
    void restoreStateWords(const std::vector<std::uint64_t> &words);

    /**
     * Frames currently holding a line. Misses minus this count equals
     * the number of evictions since construction/reset (each miss
     * fills exactly one frame and frames never empty again), which is
     * how the simulator derives its eviction counter without touching
     * the access path.
     */
    std::uint64_t validLineCount() const;

    /** Cache geometry. */
    const CacheConfig &config() const { return config_; }

    /** Frame index a global line address maps to. */
    std::uint32_t
    mapIndex(std::uint64_t line_addr) const
    {
        if (mask_ != 0)
            return static_cast<std::uint32_t>(line_addr & mask_);
        return static_cast<std::uint32_t>(line_addr % frames_.size());
    }

  private:
    /** Tag value marking an empty frame. */
    static constexpr std::uint64_t kInvalidFrame = ~std::uint64_t{0};

    CacheConfig config_;
    std::vector<std::uint64_t> frames_;
    std::uint64_t mask_; // non-zero iff frame count is a power of two
};

} // namespace topo

#endif // TOPO_CACHE_DIRECT_MAPPED_CACHE_HH
