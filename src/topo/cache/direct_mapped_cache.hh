/**
 * @file
 * Direct-mapped instruction cache simulator.
 *
 * Tracks one tag per frame. An access presents a global line address
 * (byte address / line size); the simulator reports hit or miss and
 * updates state. Kept minimal and branch-light because the evaluation
 * harness replays tens of millions of accesses per candidate layout.
 */

#ifndef TOPO_CACHE_DIRECT_MAPPED_CACHE_HH
#define TOPO_CACHE_DIRECT_MAPPED_CACHE_HH

#include <cstdint>
#include <vector>

#include "topo/cache/cache_config.hh"

namespace topo
{

/** Direct-mapped cache over global line addresses. */
class DirectMappedCache
{
  public:
    /** Construct for a validated direct-mapped configuration. */
    explicit DirectMappedCache(const CacheConfig &config);

    /**
     * Access a global line address.
     *
     * @param line_addr Byte address divided by the line size.
     * @return True on hit, false on miss (line is then filled).
     */
    bool
    access(std::uint64_t line_addr)
    {
        if (line_addr == kInvalidFrame)
            failInvalidLineAddr("DirectMappedCache");
        const std::uint32_t index = mapIndex(line_addr);
        if (frames_[index] == line_addr)
            return true;
        frames_[index] = line_addr;
        return false;
    }

    /**
     * Access with eviction reporting, for the attribution replay path.
     * Identical cache behaviour to access(); additionally reports the
     * set (frame) index the line mapped to and, on a miss that
     * displaced a valid line, that line's address.
     *
     * @param line_addr    Byte address divided by the line size.
     * @param set          Out: frame index of the access.
     * @param victim       Out: displaced line address (miss only).
     * @param victim_valid Out: true when @p victim held a valid line.
     * @return True on hit, false on miss.
     */
    bool
    accessTracked(std::uint64_t line_addr, std::uint32_t &set,
                  std::uint64_t &victim, bool &victim_valid)
    {
        if (line_addr == kInvalidFrame)
            failInvalidLineAddr("DirectMappedCache");
        const std::uint32_t index = mapIndex(line_addr);
        set = index;
        if (frames_[index] == line_addr)
            return true;
        victim = frames_[index];
        victim_valid = victim != kInvalidFrame;
        frames_[index] = line_addr;
        return false;
    }

    /**
     * Replay a batch of repeat-compressed runs — each a span of
     * consecutive line addresses executed back-to-back one or more
     * times — and return how many accesses missed. Results are
     * bit-identical to feeding every expanded access through access().
     *
     * This is the simulator's unobserved fast path, with two exact
     * algebraic shortcuts over the naive replay:
     *
     * - A hit stores the identical tag back, so every probed access is
     *   one load, one store, and one compare with no data-dependent
     *   branch, and consecutive addresses within a run need no
     *   per-access stream or translation-table loads.
     * - A run of at most frameCount() consecutive lines occupies
     *   distinct frames, so after one pass every line of the run is
     *   resident; an immediately repeated execution therefore hits on
     *   every access and leaves the cache state untouched. Such
     *   repeats contribute no misses and are not replayed at all —
     *   loop-heavy traces spend 75-85% of their accesses there. Runs
     *   longer than the cache self-evict as they wrap, so their
     *   repeats are replayed in full.
     *
     * The frame pointer and index mask are hoisted into locals for the
     * whole batch — inside a caller's loop the per-access stores (also
     * std::uint64_t) would otherwise force both to be reloaded every
     * iteration. @p run is invoked exactly once per run, in order,
     * with the run index [0, run_count), and returns {first line
     * address, line count, repeat count} with repeat count >= 1.
     *
     * Unlike access(), this loop does not guard against the
     * kInvalidLineAddr sentinel: the simulator's replay feeds it
     * 32-bit placed line addresses (simulate.cc bounds the layout
     * span to 2^32 lines), so the sentinel cannot occur here and the
     * probe stays branchless.
     */
    template <typename RunFn>
    std::uint64_t
    accessRunBatch(std::size_t run_count, RunFn &&run)
    {
        std::uint64_t *const frames = frames_.data();
        const std::uint64_t frame_count = frames_.size();
        std::uint64_t misses = 0;
        if (mask_ != 0) {
            const std::uint64_t mask = mask_;
            for (std::size_t r = 0; r < run_count; ++r) {
                const auto [base, len, repeats] = run(r);
                const std::uint32_t passes =
                    len <= frame_count ? 1 : repeats;
                for (std::uint32_t pass = 0; pass < passes; ++pass) {
                    for (std::uint32_t j = 0; j < len; ++j) {
                        const std::uint64_t line_addr = base + j;
                        const std::size_t index =
                            static_cast<std::size_t>(line_addr & mask);
                        const std::uint64_t prev = frames[index];
                        frames[index] = line_addr;
                        misses += static_cast<std::uint64_t>(
                            prev != line_addr);
                    }
                }
            }
        } else {
            for (std::size_t r = 0; r < run_count; ++r) {
                const auto [base, len, repeats] = run(r);
                const std::uint32_t passes =
                    len <= frame_count ? 1 : repeats;
                for (std::uint32_t pass = 0; pass < passes; ++pass) {
                    for (std::uint32_t j = 0; j < len; ++j) {
                        const std::uint64_t line_addr = base + j;
                        const std::size_t index =
                            static_cast<std::size_t>(line_addr %
                                                     frame_count);
                        const std::uint64_t prev = frames[index];
                        frames[index] = line_addr;
                        misses += static_cast<std::uint64_t>(
                            prev != line_addr);
                    }
                }
            }
        }
        return misses;
    }

    /** Number of frames (lines the cache can hold). */
    std::uint64_t frameCount() const { return frames_.size(); }

    /** Invalidate all frames. */
    void reset();

    /** Raw frame words for checkpointing (opaque to the caller). */
    const std::vector<std::uint64_t> &stateWords() const
    {
        return frames_;
    }

    /**
     * Restore frame words captured by stateWords() on an identically
     * configured cache; throws TopoError on a size mismatch.
     */
    void restoreStateWords(const std::vector<std::uint64_t> &words);

    /**
     * Frames currently holding a line. Misses minus this count equals
     * the number of evictions since construction/reset (each miss
     * fills exactly one frame and frames never empty again), which is
     * how the simulator derives its eviction counter without touching
     * the access path.
     */
    std::uint64_t validLineCount() const;

    /** Cache geometry. */
    const CacheConfig &config() const { return config_; }

    /** Frame index a global line address maps to. */
    std::uint32_t
    mapIndex(std::uint64_t line_addr) const
    {
        if (mask_ != 0)
            return static_cast<std::uint32_t>(line_addr & mask_);
        return static_cast<std::uint32_t>(line_addr % frames_.size());
    }

  private:
    /** Tag value marking an empty frame. */
    static constexpr std::uint64_t kInvalidFrame = kInvalidLineAddr;

    CacheConfig config_;
    std::vector<std::uint64_t> frames_;
    std::uint64_t mask_; // non-zero iff frame count is a power of two
};

} // namespace topo

#endif // TOPO_CACHE_DIRECT_MAPPED_CACHE_HH
