/**
 * @file
 * AttributionSink: optional per-procedure / per-set miss attribution
 * for the cache simulator.
 *
 * The paper's argument is explanatory — the TRG sees *which*
 * procedures conflict in the cache — so the simulator can, on request,
 * record exactly that: per-procedure fetch/miss counters, per-set
 * access/miss pressure, and a sparse evictor→victim procedure
 * conflict matrix. The sink is entirely off the default replay path
 * (a separate template instantiation of the replay loop); when absent
 * the simulator is bit- and branch-identical to the unobserved build.
 *
 * Memory bounds: the per-procedure and per-set vectors are fixed at
 * construction (procCount and setCount entries), and the conflict
 * matrix holds at most Options::max_pairs distinct (evictor, victim)
 * cells — once full, evictions over unseen pairs are tallied in
 * droppedPairs() instead of growing the map. Hot workloads touch far
 * fewer distinct pairs than the default cap.
 */

#ifndef TOPO_CACHE_ATTRIBUTION_HH
#define TOPO_CACHE_ATTRIBUTION_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/obs/json.hh"
#include "topo/program/layout.hh"
#include "topo/program/program.hh"

namespace topo
{

/** One cell of the procedure conflict matrix. */
struct ConflictPair
{
    ProcId evictor = kInvalidProc;
    ProcId victim = kInvalidProc;
    std::uint64_t count = 0;
};

/** Memory bounds of an AttributionSink. */
struct AttributionOptions
{
    /** Conflict-matrix cell budget (bounded memory). */
    std::size_t max_pairs = 4096;
};

/** Per-procedure / per-set miss attribution for one simulation. */
class AttributionSink
{
  public:
    using Options = AttributionOptions;

    /**
     * Build a sink for one (program, layout, cache) triple. The layout
     * is used to resolve evicted line addresses back to the procedure
     * that owned them.
     *
     * @param program    Procedure inventory.
     * @param layout     The layout being simulated (complete).
     * @param config     Cache geometry of the simulation.
     * @param line_bytes Line size the fetch stream was expanded at.
     * @param options    Memory bounds.
     */
    AttributionSink(const Program &program, const Layout &layout,
                    const CacheConfig &config, std::uint32_t line_bytes,
                    Options options = {});

    /** Record one access (hit or miss) by @p proc mapping to @p set. */
    void
    recordAccess(ProcId proc, std::uint32_t set)
    {
        ++fetches_by_proc_[proc];
        ++accesses_by_set_[set];
    }

    /**
     * Record a miss: @p proc fetched into @p set; when @p victim_valid,
     * the displaced line address @p victim_line is attributed to its
     * owning procedure in the conflict matrix.
     */
    void recordMiss(ProcId proc, std::uint32_t set,
                    std::uint64_t victim_line, bool victim_valid);

    /** Line fetches issued by each procedure. */
    const std::vector<std::uint64_t> &fetchesByProc() const
    {
        return fetches_by_proc_;
    }
    /** Misses charged to each (fetching) procedure. */
    const std::vector<std::uint64_t> &missesByProc() const
    {
        return misses_by_proc_;
    }
    /** Accesses landing in each cache set. */
    const std::vector<std::uint64_t> &accessesBySet() const
    {
        return accesses_by_set_;
    }
    /** Misses landing in each cache set. */
    const std::vector<std::uint64_t> &missesBySet() const
    {
        return misses_by_set_;
    }

    /** Total valid-line evictions the sink has attributed. */
    std::uint64_t evictions() const { return evictions_; }

    /** Evictions dropped because the pair budget was exhausted. */
    std::uint64_t droppedPairs() const { return dropped_pairs_; }

    /** Distinct (evictor, victim) cells currently tracked. */
    std::size_t trackedPairs() const { return pairs_.size(); }

    /**
     * The @p k heaviest conflict-matrix cells, by descending count
     * (ties broken by (evictor, victim) id for determinism).
     */
    std::vector<ConflictPair> topPairs(std::size_t k) const;

    /**
     * Procedure owning a global line address under the sink's layout;
     * kInvalidProc for gap/padding lines no procedure covers.
     */
    ProcId procAtLine(std::uint64_t line_addr) const;

    /**
     * JSON summary: per-procedure and per-set counters plus the top
     * @p top_k conflict pairs (procedure names resolved).
     */
    JsonValue toJson(std::size_t top_k = 16) const;

  private:
    /** One procedure's [first_line, end_line) footprint. */
    struct Extent
    {
        std::uint64_t first_line;
        std::uint64_t end_line;
        ProcId proc;
    };

    const Program *program_;
    Options options_;
    std::vector<Extent> extents_; // sorted by first_line
    std::vector<std::uint64_t> fetches_by_proc_;
    std::vector<std::uint64_t> misses_by_proc_;
    std::vector<std::uint64_t> accesses_by_set_;
    std::vector<std::uint64_t> misses_by_set_;
    /** (evictor << 32 | victim) -> eviction count, size-capped. */
    std::unordered_map<std::uint64_t, std::uint64_t> pairs_;
    std::uint64_t evictions_ = 0;
    std::uint64_t dropped_pairs_ = 0;
};

} // namespace topo

#endif // TOPO_CACHE_ATTRIBUTION_HH
