#include "topo/cache/set_associative_cache.hh"

#include <limits>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

constexpr std::uint64_t kInvalidTag =
    std::numeric_limits<std::uint64_t>::max();

} // namespace

SetAssociativeCache::SetAssociativeCache(const CacheConfig &config)
    : config_(config)
{
    config_.validate();
    sets_ = config_.setCount();
    ways_ = config_.associativity;
    mask_ = isPowerOfTwo(sets_) ? sets_ - 1 : 0;
    tags_.assign(static_cast<std::size_t>(sets_) * ways_, kInvalidTag);
}

bool
SetAssociativeCache::access(std::uint64_t line_addr)
{
    const std::uint32_t set = mapSet(line_addr);
    std::uint64_t *base = &tags_[static_cast<std::size_t>(set) * ways_];
    // MRU-ordered search. On hit at position w, rotate [0, w] right by
    // one so the hit line becomes MRU; on miss, the rotation over the
    // whole set drops the LRU line.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w] == line_addr) {
            for (std::uint32_t k = w; k > 0; --k)
                base[k] = base[k - 1];
            base[0] = line_addr;
            return true;
        }
    }
    for (std::uint32_t k = ways_ - 1; k > 0; --k)
        base[k] = base[k - 1];
    base[0] = line_addr;
    return false;
}

bool
SetAssociativeCache::accessTracked(std::uint64_t line_addr,
                                   std::uint32_t &set,
                                   std::uint64_t &victim,
                                   bool &victim_valid)
{
    set = mapSet(line_addr);
    std::uint64_t *base = &tags_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w] == line_addr) {
            for (std::uint32_t k = w; k > 0; --k)
                base[k] = base[k - 1];
            base[0] = line_addr;
            return true;
        }
    }
    victim = base[ways_ - 1];
    victim_valid = victim != kInvalidTag;
    for (std::uint32_t k = ways_ - 1; k > 0; --k)
        base[k] = base[k - 1];
    base[0] = line_addr;
    return false;
}

void
SetAssociativeCache::reset()
{
    tags_.assign(tags_.size(), kInvalidTag);
}

void
SetAssociativeCache::restoreStateWords(
    const std::vector<std::uint64_t> &words)
{
    requireData(words.size() == tags_.size(),
                "SetAssociativeCache: checkpoint state size mismatch "
                "(different cache geometry?)");
    tags_ = words;
}

std::uint64_t
SetAssociativeCache::validLineCount() const
{
    std::uint64_t valid = 0;
    for (const std::uint64_t tag : tags_) {
        if (tag != kInvalidTag)
            ++valid;
    }
    return valid;
}

} // namespace topo
