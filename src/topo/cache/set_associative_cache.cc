#include "topo/cache/set_associative_cache.hh"

namespace topo
{

// One instantiation per implemented policy; every consumer links
// against these instead of re-instantiating the cache per TU.
template class PolicyCache<TrueLruPolicy>;
template class PolicyCache<TreePlruPolicy>;
template class PolicyCache<SrripPolicy>;
template class PolicyCache<FifoPolicy>;
template class PolicyCache<RandomPolicy>;

} // namespace topo
