/**
 * @file
 * Instruction cache configuration shared by the simulators and the
 * placement algorithms (which need line size and line count to reason
 * about cache-relative alignment).
 */

#ifndef TOPO_CACHE_CACHE_CONFIG_HH
#define TOPO_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "topo/cache/replacement_policy.hh"

namespace topo
{

/**
 * Line-address value both cache models reserve as the empty-frame /
 * empty-way sentinel. A real access with this address would read as
 * always-resident wherever an invalid frame remains and would never
 * be reported as a valid victim, so the models reject it (a layout
 * would need to end at the top of the 64-bit address space to
 * produce it).
 */
inline constexpr std::uint64_t kInvalidLineAddr = ~std::uint64_t{0};

/** Throw the user-error TopoError for an access to kInvalidLineAddr. */
[[noreturn]] void failInvalidLineAddr(const char *model);

/**
 * Geometry of an instruction cache.
 *
 * Line counts are not required to be powers of two (the paper's
 * Figure 1 example uses a 3-line cache); the simulators use general
 * modulo indexing with a fast path for powers of two.
 */
struct CacheConfig
{
    std::uint32_t size_bytes = 8 * 1024;
    std::uint32_t line_bytes = 32;
    std::uint32_t associativity = 1;
    /** Replacement policy for associative geometries (1-way caches
     *  have no replacement choice and always take the direct-mapped
     *  model regardless of this field). */
    ReplacementPolicy policy = ReplacementPolicy::kLru;
    /** Seed for ReplacementPolicy::kRandom victim draws. */
    std::uint64_t policy_seed = kDefaultPolicySeed;

    /** Total number of lines (frames) in the cache. */
    std::uint32_t
    lineCount() const
    {
        return size_bytes / line_bytes;
    }

    /** Number of sets (lineCount / associativity). */
    std::uint32_t
    setCount() const
    {
        return lineCount() / associativity;
    }

    /** Validate geometry; throws TopoError on nonsense. */
    void validate() const;

    /** Human-readable description, e.g. "8KB direct-mapped, 32B lines". */
    std::string describe() const;

    /** The paper's evaluation cache: 8 KB direct-mapped, 32 B lines. */
    static CacheConfig
    paperDefault()
    {
        return CacheConfig{8 * 1024, 32, 1};
    }

    /** The Section 6 cache: 8 KB 2-way set-associative, 32 B lines. */
    static CacheConfig
    paperTwoWay()
    {
        return CacheConfig{8 * 1024, 32, 2};
    }
};

} // namespace topo

#endif // TOPO_CACHE_CACHE_CONFIG_HH
