/**
 * @file
 * N-way set-associative instruction cache with true LRU replacement,
 * used by the Section 6 extension experiments. A 1-way instance
 * behaves identically to DirectMappedCache (verified by test).
 */

#ifndef TOPO_CACHE_SET_ASSOCIATIVE_CACHE_HH
#define TOPO_CACHE_SET_ASSOCIATIVE_CACHE_HH

#include <cstdint>
#include <vector>

#include "topo/cache/cache_config.hh"

namespace topo
{

/** Set-associative cache over global line addresses (true LRU). */
class SetAssociativeCache
{
  public:
    /** Construct for a validated configuration. */
    explicit SetAssociativeCache(const CacheConfig &config);

    /**
     * Access a global line address.
     *
     * @param line_addr Byte address divided by the line size.
     * @return True on hit, false on miss (line then filled, LRU victim
     *         evicted).
     */
    bool access(std::uint64_t line_addr);

    /**
     * Access with eviction reporting, for the attribution replay path.
     * Identical cache behaviour to access(); additionally reports the
     * set index and, on a miss that displaced a valid (LRU) line, that
     * line's address.
     *
     * @param line_addr    Byte address divided by the line size.
     * @param set          Out: set index of the access.
     * @param victim       Out: displaced line address (miss only).
     * @param victim_valid Out: true when a valid line was displaced.
     * @return True on hit, false on miss.
     */
    bool accessTracked(std::uint64_t line_addr, std::uint32_t &set,
                       std::uint64_t &victim, bool &victim_valid);

    /**
     * Replay a batch of repeat-compressed runs and return how many
     * accesses missed; results are bit-identical to feeding every
     * expanded access through access(). Counterpart of
     * DirectMappedCache::accessRunBatch so the simulator's batched
     * replay path compiles for either cache model; LRU updates keep
     * the per-access branch here.
     *
     * The repeat shortcut holds under true LRU as well: a run of at
     * most lineCount() consecutive lines lands at most ways() lines
     * in any set, so one pass leaves every line of the run resident
     * (a set never evicts one of the newest ways() entries), and an
     * immediately repeated execution hits on every access while
     * re-touching the run's lines in the same order — the final
     * recency ordering is identical, so the state is unchanged and
     * the repeat need not be replayed. Longer runs self-evict and
     * their repeats are replayed in full.
     *
     * @p run is invoked exactly once per run, in order, with the run
     * index [0, run_count), and returns {first line address, line
     * count, repeat count} with repeat count >= 1.
     */
    template <typename RunFn>
    std::uint64_t
    accessRunBatch(std::size_t run_count, RunFn &&run)
    {
        const std::uint64_t line_count =
            static_cast<std::uint64_t>(sets_) * ways_;
        std::uint64_t misses = 0;
        for (std::size_t r = 0; r < run_count; ++r) {
            const auto [base, len, repeats] = run(r);
            const std::uint32_t passes = len <= line_count ? 1 : repeats;
            for (std::uint32_t pass = 0; pass < passes; ++pass) {
                for (std::uint32_t j = 0; j < len; ++j) {
                    misses +=
                        static_cast<std::uint64_t>(!access(base + j));
                }
            }
        }
        return misses;
    }

    /** Invalidate all frames. */
    void reset();

    /** Raw set-major tag words for checkpointing (opaque). */
    const std::vector<std::uint64_t> &stateWords() const
    {
        return tags_;
    }

    /**
     * Restore tag words captured by stateWords() on an identically
     * configured cache; throws TopoError on a size mismatch.
     */
    void restoreStateWords(const std::vector<std::uint64_t> &words);

    /**
     * Frames currently holding a line. Misses minus this count equals
     * the number of evictions since construction/reset (each miss
     * fills exactly one frame and frames never empty again).
     */
    std::uint64_t validLineCount() const;

    /** Cache geometry. */
    const CacheConfig &config() const { return config_; }

    /** Set index a global line address maps to. */
    std::uint32_t
    mapSet(std::uint64_t line_addr) const
    {
        if (mask_ != 0)
            return static_cast<std::uint32_t>(line_addr & mask_);
        return static_cast<std::uint32_t>(line_addr % sets_);
    }

  private:
    CacheConfig config_;
    std::uint32_t sets_ = 0;
    std::uint32_t ways_ = 0;
    std::uint64_t mask_ = 0;
    /**
     * Tags laid out set-major: ways_[set * ways + w]. Within a set,
     * index 0 is most recently used; replacement shifts entries down.
     */
    std::vector<std::uint64_t> tags_;
};

} // namespace topo

#endif // TOPO_CACHE_SET_ASSOCIATIVE_CACHE_HH
