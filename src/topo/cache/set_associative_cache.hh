/**
 * @file
 * N-way set-associative instruction cache templated over the
 * replacement policy (replacement_policy.hh), used by the Section 6
 * extension experiments and the policy-robustness reports. A 1-way
 * instance of every policy behaves identically to DirectMappedCache
 * (verified by test); SetAssociativeCache keeps its historical
 * meaning as the true-LRU instantiation.
 */

#ifndef TOPO_CACHE_SET_ASSOCIATIVE_CACHE_HH
#define TOPO_CACHE_SET_ASSOCIATIVE_CACHE_HH

#include <cstdint>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/cache/replacement_policy.hh"
#include "topo/util/error.hh"

namespace topo
{

/** Set-associative cache over global line addresses. */
template <typename Policy>
class PolicyCache
{
  public:
    /** Tag value marking an empty way. */
    static constexpr std::uint64_t kInvalidTag = kInvalidLineAddr;

    /** Construct for a validated configuration. */
    explicit PolicyCache(const CacheConfig &config)
        : config_(config), sets_(0), ways_(0), mask_(0),
          policy_(makePolicy(config_))
    {
        sets_ = config_.setCount();
        ways_ = config_.associativity;
        mask_ = isPowerOfTwo(sets_) ? sets_ - 1 : 0;
        tags_.assign(static_cast<std::size_t>(sets_) * ways_,
                     kInvalidTag);
    }

    /**
     * Access a global line address.
     *
     * @param line_addr Byte address divided by the line size.
     * @return True on hit, false on miss (line then filled; the
     *         lowest invalid way if one exists, else the policy's
     *         victim).
     */
    bool
    access(std::uint64_t line_addr)
    {
        if (line_addr == kInvalidTag)
            failInvalidLineAddr("SetAssociativeCache");
        const std::uint32_t set = mapSet(line_addr);
        std::uint64_t *base =
            &tags_[static_cast<std::size_t>(set) * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (base[w] == line_addr) {
                policy_.onHit(set, w);
                return true;
            }
        }
        base[fillWay(set, base)] = line_addr;
        return false;
    }

    /**
     * Access with eviction reporting, for the attribution replay path.
     * Identical cache behaviour to access(); additionally reports the
     * set index and, on a miss that displaced a valid line, that
     * line's address.
     *
     * @param line_addr    Byte address divided by the line size.
     * @param set          Out: set index of the access.
     * @param victim       Out: displaced line address (miss only).
     * @param victim_valid Out: true when a valid line was displaced.
     * @return True on hit, false on miss.
     */
    bool
    accessTracked(std::uint64_t line_addr, std::uint32_t &set,
                  std::uint64_t &victim, bool &victim_valid)
    {
        if (line_addr == kInvalidTag)
            failInvalidLineAddr("SetAssociativeCache");
        set = mapSet(line_addr);
        std::uint64_t *base =
            &tags_[static_cast<std::size_t>(set) * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (base[w] == line_addr) {
                policy_.onHit(set, w);
                return true;
            }
        }
        const std::uint32_t way = fillWay(set, base);
        victim = base[way];
        victim_valid = victim != kInvalidTag;
        base[way] = line_addr;
        return false;
    }

    /**
     * Replay a batch of repeat-compressed runs and return how many
     * accesses missed; results are bit-identical to feeding every
     * expanded access through access(). Counterpart of
     * DirectMappedCache::accessRunBatch so the simulator's batched
     * replay path compiles for any cache model; replacement updates
     * keep the per-access branch here.
     *
     * The repeat-elision shortcut (one pass stands in for all repeats
     * of a run no longer than the cache) is applied only when the
     * policy declares it exact via Policy::kRepeatElisionSound; see
     * replacement_policy.hh for the true-LRU proof and the
     * counterexamples that make every other policy replay repeats in
     * full.
     *
     * @p run is invoked exactly once per run, in order, with the run
     * index [0, run_count), and returns {first line address, line
     * count, repeat count} with repeat count >= 1.
     */
    template <typename RunFn>
    std::uint64_t
    accessRunBatch(std::size_t run_count, RunFn &&run)
    {
        const std::uint64_t line_count =
            static_cast<std::uint64_t>(sets_) * ways_;
        std::uint64_t misses = 0;
        for (std::size_t r = 0; r < run_count; ++r) {
            const auto [base, len, repeats] = run(r);
            const std::uint32_t passes =
                Policy::kRepeatElisionSound && len <= line_count
                    ? 1
                    : repeats;
            for (std::uint32_t pass = 0; pass < passes; ++pass) {
                for (std::uint32_t j = 0; j < len; ++j) {
                    misses +=
                        static_cast<std::uint64_t>(!access(base + j));
                }
            }
        }
        return misses;
    }

    /** Invalidate all ways and reset the replacement metadata. */
    void
    reset()
    {
        tags_.assign(tags_.size(), kInvalidTag);
        policy_.reset();
    }

    /**
     * Raw state for checkpointing (opaque): set-major tag words
     * followed by the policy's replacement metadata.
     */
    std::vector<std::uint64_t>
    stateWords() const
    {
        std::vector<std::uint64_t> words;
        words.reserve(tags_.size() + policy_.stateWordCount());
        words.insert(words.end(), tags_.begin(), tags_.end());
        policy_.appendStateWords(words);
        return words;
    }

    /**
     * Restore state captured by stateWords() on an identically
     * configured cache; throws TopoError on a size mismatch.
     */
    void
    restoreStateWords(const std::vector<std::uint64_t> &words)
    {
        requireData(words.size() ==
                        tags_.size() + policy_.stateWordCount(),
                    "SetAssociativeCache: checkpoint state size "
                    "mismatch (different cache geometry or policy?)");
        tags_.assign(words.begin(),
                     words.begin() +
                         static_cast<std::ptrdiff_t>(tags_.size()));
        policy_.restoreStateWords(words.data() + tags_.size());
    }

    /**
     * Ways currently holding a line. Misses minus this count equals
     * the number of evictions since construction/reset for every
     * policy: a miss fills the lowest invalid way while one exists
     * (never consulting the policy), so each miss either claims an
     * empty way or displaces exactly one valid line, and ways never
     * empty again.
     */
    std::uint64_t
    validLineCount() const
    {
        std::uint64_t valid = 0;
        for (const std::uint64_t tag : tags_) {
            if (tag != kInvalidTag)
                ++valid;
        }
        return valid;
    }

    /** Cache geometry. */
    const CacheConfig &config() const { return config_; }

    /** Set index a global line address maps to. */
    std::uint32_t
    mapSet(std::uint64_t line_addr) const
    {
        if (mask_ != 0)
            return static_cast<std::uint32_t>(line_addr & mask_);
        return static_cast<std::uint32_t>(line_addr % sets_);
    }

  private:
    static bool
    isPowerOfTwo(std::uint64_t x)
    {
        return x != 0 && (x & (x - 1)) == 0;
    }

    static Policy
    makePolicy(const CacheConfig &config)
    {
        config.validate();
        return Policy(config.setCount(), config.associativity,
                      config.policy_seed);
    }

    /**
     * Choose the way a miss fills: invalid-first (preserving the
     * "misses - validLineCount() == evictions" accounting for every
     * policy, random included), else the policy's victim. Updates the
     * policy metadata for the fill.
     */
    std::uint32_t
    fillWay(std::uint32_t set, const std::uint64_t *base)
    {
        std::uint32_t way = ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (base[w] == kInvalidTag) {
                way = w;
                break;
            }
        }
        if (way == ways_)
            way = policy_.victimWay(set);
        policy_.onFill(set, way);
        return way;
    }

    CacheConfig config_;
    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint64_t mask_;
    /** Tags laid out set-major: tags_[set * ways + w]. */
    std::vector<std::uint64_t> tags_;
    Policy policy_;
};

/** The historical (true-LRU) set-associative cache. */
using SetAssociativeCache = PolicyCache<TrueLruPolicy>;

extern template class PolicyCache<TrueLruPolicy>;
extern template class PolicyCache<TreePlruPolicy>;
extern template class PolicyCache<SrripPolicy>;
extern template class PolicyCache<FifoPolicy>;
extern template class PolicyCache<RandomPolicy>;

} // namespace topo

#endif // TOPO_CACHE_SET_ASSOCIATIVE_CACHE_HH
