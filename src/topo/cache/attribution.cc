#include "topo/cache/attribution.hh"

#include <algorithm>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

std::uint64_t
pairKey(ProcId evictor, ProcId victim)
{
    return (static_cast<std::uint64_t>(evictor) << 32) |
           static_cast<std::uint64_t>(victim);
}

} // namespace

AttributionSink::AttributionSink(const Program &program,
                                 const Layout &layout,
                                 const CacheConfig &config,
                                 std::uint32_t line_bytes,
                                 Options options)
    : program_(&program), options_(options)
{
    require(options_.max_pairs > 0,
            "AttributionSink: max_pairs must be positive");
    fetches_by_proc_.assign(program.procCount(), 0);
    misses_by_proc_.assign(program.procCount(), 0);
    accesses_by_set_.assign(config.setCount(), 0);
    misses_by_set_.assign(config.setCount(), 0);
    extents_.reserve(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        const ProcId id = static_cast<ProcId>(i);
        const std::uint64_t first = layout.startLine(id, line_bytes);
        extents_.push_back(
            {first, first + program.sizeInLines(id, line_bytes), id});
    }
    std::sort(extents_.begin(), extents_.end(),
              [](const Extent &a, const Extent &b) {
                  return a.first_line < b.first_line;
              });
    pairs_.reserve(std::min<std::size_t>(options_.max_pairs, 1 << 16));
}

ProcId
AttributionSink::procAtLine(std::uint64_t line_addr) const
{
    // Last extent starting at or before the line; layouts never
    // overlap, so at most one extent can cover it.
    auto it = std::upper_bound(
        extents_.begin(), extents_.end(), line_addr,
        [](std::uint64_t line, const Extent &e) {
            return line < e.first_line;
        });
    if (it == extents_.begin())
        return kInvalidProc;
    --it;
    return line_addr < it->end_line ? it->proc : kInvalidProc;
}

void
AttributionSink::recordMiss(ProcId proc, std::uint32_t set,
                            std::uint64_t victim_line, bool victim_valid)
{
    ++misses_by_proc_[proc];
    ++misses_by_set_[set];
    if (!victim_valid)
        return; // cold fill: no procedure was displaced
    ++evictions_;
    const ProcId victim = procAtLine(victim_line);
    if (victim == kInvalidProc)
        return; // gap/padding line (cannot happen for packed layouts)
    const std::uint64_t key = pairKey(proc, victim);
    auto it = pairs_.find(key);
    if (it != pairs_.end()) {
        ++it->second;
        return;
    }
    if (pairs_.size() >= options_.max_pairs) {
        ++dropped_pairs_;
        return;
    }
    pairs_.emplace(key, 1);
}

std::vector<ConflictPair>
AttributionSink::topPairs(std::size_t k) const
{
    std::vector<ConflictPair> all;
    all.reserve(pairs_.size());
    for (const auto &[key, count] : pairs_) {
        all.push_back({static_cast<ProcId>(key >> 32),
                       static_cast<ProcId>(key & 0xffffffffu), count});
    }
    std::sort(all.begin(), all.end(),
              [](const ConflictPair &a, const ConflictPair &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.evictor != b.evictor)
                      return a.evictor < b.evictor;
                  return a.victim < b.victim;
              });
    if (all.size() > k)
        all.resize(k);
    return all;
}

JsonValue
AttributionSink::toJson(std::size_t top_k) const
{
    JsonValue root = JsonValue::object();
    root.set("evictions",
             JsonValue::number(static_cast<double>(evictions_)));
    root.set("tracked_pairs",
             JsonValue::number(static_cast<double>(pairs_.size())));
    root.set("dropped_pairs",
             JsonValue::number(static_cast<double>(dropped_pairs_)));

    JsonValue procs = JsonValue::array();
    for (std::size_t i = 0; i < fetches_by_proc_.size(); ++i) {
        if (fetches_by_proc_[i] == 0 && misses_by_proc_[i] == 0)
            continue;
        JsonValue row = JsonValue::object();
        row.set("proc", JsonValue::string(
                            program_->proc(static_cast<ProcId>(i)).name));
        row.set("fetches", JsonValue::number(
                               static_cast<double>(fetches_by_proc_[i])));
        row.set("misses", JsonValue::number(
                              static_cast<double>(misses_by_proc_[i])));
        procs.push(std::move(row));
    }
    root.set("procedures", std::move(procs));

    JsonValue sets = JsonValue::array();
    for (std::size_t s = 0; s < accesses_by_set_.size(); ++s) {
        JsonValue row = JsonValue::object();
        row.set("set", JsonValue::number(static_cast<double>(s)));
        row.set("accesses", JsonValue::number(
                                static_cast<double>(accesses_by_set_[s])));
        row.set("misses", JsonValue::number(
                              static_cast<double>(misses_by_set_[s])));
        sets.push(std::move(row));
    }
    root.set("sets", std::move(sets));

    JsonValue top = JsonValue::array();
    for (const ConflictPair &pair : topPairs(top_k)) {
        JsonValue row = JsonValue::object();
        row.set("evictor",
                JsonValue::string(program_->proc(pair.evictor).name));
        row.set("victim",
                JsonValue::string(program_->proc(pair.victim).name));
        row.set("count",
                JsonValue::number(static_cast<double>(pair.count)));
        top.push(std::move(row));
    }
    root.set("top_pairs", std::move(top));
    return root;
}

} // namespace topo
