#include "topo/cache/replacement_policy.hh"

#include "topo/util/error.hh"

namespace topo
{

const char *
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::kLru:
        return TrueLruPolicy::kName;
      case ReplacementPolicy::kPlru:
        return TreePlruPolicy::kName;
      case ReplacementPolicy::kSrrip:
        return SrripPolicy::kName;
      case ReplacementPolicy::kFifo:
        return FifoPolicy::kName;
      case ReplacementPolicy::kRandom:
        return RandomPolicy::kName;
    }
    failInternal("replacementPolicyName: unknown policy enumerator");
}

ReplacementPolicy
parseReplacementPolicy(const std::string &name)
{
    for (const ReplacementPolicy policy : kAllReplacementPolicies) {
        if (name == replacementPolicyName(policy))
            return policy;
    }
    fail("unknown replacement policy '" + name +
         "' (use lru, plru, srrip, fifo, or random)");
}

} // namespace topo
