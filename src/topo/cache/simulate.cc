#include "topo/cache/simulate.hh"

#include "topo/cache/attribution.hh"
#include "topo/cache/direct_mapped_cache.hh"
#include "topo/cache/set_associative_cache.hh"
#include "topo/cache/taxonomy.hh"
#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/obs/timeline.hh"
#include "topo/resilience/fault.hh"
#include "topo/util/arena.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/**
 * Per-thread scratch for the replay's line-address table. reset() +
 * re-alloc per replay reuses the grown buffer, so after the first
 * (largest) replay on a thread the steady-state loop performs no heap
 * allocation (asserted by attribution_test's allocation hooks).
 */
thread_local util::Arena t_replay_arena;

/** Emit a progress heartbeat every this many line fetches. */
constexpr std::uint64_t kHeartbeatMask = (1ULL << 23) - 1; // ~8.4M

/** Probe the throw_io fault stream every this many line fetches. */
constexpr std::uint64_t kFaultMask = (1ULL << 12) - 1; // 4096

/**
 * Shared replay loop; Cache is DirectMappedCache or a PolicyCache
 * instantiation, all exposing bool access(uint64). The
 * heartbeat, controlled (checkpoint/resume/fault), and observed
 * (attribution/timeline) variants are compiled separately so the
 * default path pays nothing for progress reporting, resilience hooks,
 * or observation sinks.
 */
template <typename Cache, bool kHeartbeat, bool kControlled,
          bool kObserved>
SimResult
replay(const Program &program, const Layout &layout,
       const FetchStream &stream, Cache &cache, bool attribute,
       const SimControl *control, std::uint64_t fingerprint,
       const SimObservers *observers)
{
    // Precompute the placed address of every program line so the hot
    // loop is one table load + cache probe per reference. The stream
    // supplies 4-byte program line ids; this table is the only part
    // that changes between candidate layouts.
    // 32-bit entries keep the table half the size (it is the loop's
    // only randomly-indexed load besides the frame array, and at
    // paper-suite scale it overflows L1); a 2^32-line layout span
    // would be a 256 GiB text segment, so the check never fires in
    // practice.
    t_replay_arena.reset();
    std::span<std::uint32_t> addr_of =
        t_replay_arena.alloc<std::uint32_t>(stream.programLineCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        const ProcId proc = static_cast<ProcId>(i);
        const std::uint64_t base =
            layout.startLine(proc, stream.lineBytes());
        const std::uint32_t first = stream.lineBase(proc);
        const std::uint32_t last =
            stream.lineBase(static_cast<ProcId>(i + 1));
        require(base + (last - first) <= ~std::uint32_t{0},
                "simulateLayout: layout spans more than 2^32 cache "
                "lines");
        for (std::uint32_t id = first; id < last; ++id)
            addr_of[id] =
                static_cast<std::uint32_t>(base + (id - first));
    }

    SimResult result;
    if (attribute)
        result.misses_by_proc.assign(program.procCount(), 0);

    std::uint64_t start = 0;
    if constexpr (kControlled) {
        if (control != nullptr && control->resume != nullptr) {
            const SimCheckpoint &ckpt = *control->resume;
            require(ckpt.fingerprint == fingerprint,
                    "resume: checkpoint was taken from a different "
                    "run (inputs, layout, or cache geometry differ)");
            require(ckpt.cursor <= stream.size(),
                    "resume: checkpoint cursor beyond the stream");
            cache.restoreStateWords(ckpt.cache_words);
            result.misses = ckpt.misses;
            if (attribute) {
                requireData(ckpt.misses_by_proc.size() ==
                                program.procCount(),
                            "resume: checkpoint attribution does not "
                            "match the program");
                result.misses_by_proc = ckpt.misses_by_proc;
            }
            start = ckpt.cursor;
            logInfo("simulate", "resumed from checkpoint",
                    {{"cursor", start}, {"misses", result.misses}});
        }
    }

    const std::uint32_t *ids = stream.lineIds().data();
    std::uint64_t cursor = start;
    const std::uint64_t total = stream.size();
    auto write_ckpt = [&](std::uint64_t at) {
        SimCheckpoint ckpt;
        ckpt.fingerprint = fingerprint;
        ckpt.cursor = at;
        ckpt.misses = result.misses;
        ckpt.cache_words = cache.stateWords();
        ckpt.misses_by_proc = result.misses_by_proc;
        saveCheckpoint(control->checkpoint_path, ckpt);
        MetricsRegistry::current()
            .counter("sim.checkpoints_written")
            .add();
    };
    (void)write_ckpt; // only invoked in the controlled instantiation
    (void)observers;  // only read in the observed instantiation
    if constexpr (!kHeartbeat && !kControlled && !kObserved) {
        // Plain unattributed replay — the configuration every
        // placement-evaluation call hits — goes through the cache's
        // run-batched access loop (branchless on the direct-mapped
        // model), probing each run's consecutive line addresses from a
        // single table lookup and skipping cache-resident repeats
        // outright. Uncontrolled replays never resume, so the batch
        // always covers the entire stream.
        if (!attribute) {
            require(cursor == 0,
                    "replay: batched fast path cannot resume");
            const std::uint32_t *const table = addr_of.data();
            const FetchRun *const runs = stream.runs().data();
            result.misses += cache.accessRunBatch(
                stream.runs().size(), [table, runs](std::size_t r) {
                    return std::tuple<std::uint64_t, std::uint32_t,
                                      std::uint32_t>(
                        table[runs[r].first_line], runs[r].line_count,
                        runs[r].repeats);
                });
            cursor = total;
        }
    }
    for (; cursor < total; ++cursor) {
        const std::uint32_t id = ids[cursor];
        const std::uint64_t line_addr = addr_of[id];
        if constexpr (kObserved) {
            const ProcId proc = stream.procOfLine(id);
            std::uint32_t set = 0;
            std::uint64_t victim = 0;
            bool victim_valid = false;
            const bool hit =
                cache.accessTracked(line_addr, set, victim,
                                    victim_valid);
            if (observers->attribution != nullptr)
                observers->attribution->recordAccess(proc, set);
            if (!hit) {
                ++result.misses;
                if (attribute)
                    ++result.misses_by_proc[proc];
                if (observers->attribution != nullptr) {
                    observers->attribution->recordMiss(
                        proc, set, victim, victim_valid);
                }
            }
            if (observers->taxonomy != nullptr) {
                // Classify before timeline->record(): record() may
                // close the window this fetch belongs to.
                const TaxonomyEvent event =
                    observers->taxonomy->record(proc, id, hit);
                if (observers->timeline != nullptr)
                    observers->timeline->noteTaxonomy(event);
            }
            if (observers->timeline != nullptr)
                observers->timeline->record(proc, !hit);
        } else if (!cache.access(line_addr)) {
            ++result.misses;
            if (attribute)
                ++result.misses_by_proc[stream.procOfLine(id)];
        }
        if constexpr (kHeartbeat) {
            if (((cursor + 1) & kHeartbeatMask) == 0) {
                logDebug("simulate", "progress",
                         {{"done", cursor + 1},
                          {"total", total},
                          {"misses", result.misses}});
            }
        }
        if constexpr (kControlled) {
            if (((cursor + 1) & kFaultMask) == 0)
                faultMaybeThrowIo("simulate");
            if (control != nullptr) {
                if (control->checkpoint_every != 0 &&
                    !control->checkpoint_path.empty() &&
                    (cursor + 1 - start) % control->checkpoint_every ==
                        0 &&
                    cursor + 1 != total) {
                    write_ckpt(cursor + 1);
                }
                if (control->stop_after != 0 &&
                    cursor + 1 >= control->stop_after) {
                    ++cursor;
                    result.completed = false;
                    break;
                }
            }
        }
    }
    if constexpr (kControlled) {
        if (!result.completed && control != nullptr &&
            !control->checkpoint_path.empty()) {
            write_ckpt(cursor);
        }
    }
    result.accesses = cursor;
    // Caches start empty and lines never invalidate, so each miss
    // either filled an empty frame or displaced a valid line.
    result.evictions = result.misses - cache.validLineCount();
    return result;
}

template <typename Cache>
SimResult
replayDispatch(const Program &program, const Layout &layout,
               const FetchStream &stream, Cache &cache, bool attribute,
               const SimControl *control, std::uint64_t fingerprint,
               const SimObservers *observers)
{
    const bool controlled =
        control != nullptr || faultArmed(FaultKind::kThrowIo);
    const bool heartbeat = logEnabled(LogLevel::kDebug);
    const bool observed = observers != nullptr && observers->any();
    if (observed) {
        // Observers never combine with checkpoint/resume (enforced by
        // simulateLayout), so the controlled variants are not needed
        // here; a heartbeat variant keeps long attributed runs
        // debuggable.
        if (heartbeat) {
            return replay<Cache, true, false, true>(
                program, layout, stream, cache, attribute, nullptr,
                fingerprint, observers);
        }
        return replay<Cache, false, false, true>(
            program, layout, stream, cache, attribute, nullptr,
            fingerprint, observers);
    }
    if (controlled) {
        if (heartbeat) {
            return replay<Cache, true, true, false>(
                program, layout, stream, cache, attribute, control,
                fingerprint, nullptr);
        }
        return replay<Cache, false, true, false>(
            program, layout, stream, cache, attribute, control,
            fingerprint, nullptr);
    }
    if (heartbeat) {
        return replay<Cache, true, false, false>(
            program, layout, stream, cache, attribute, nullptr,
            fingerprint, nullptr);
    }
    return replay<Cache, false, false, false>(
        program, layout, stream, cache, attribute, nullptr,
        fingerprint, nullptr);
}

} // namespace

std::uint64_t
simFingerprint(const Program &program, const Layout &layout,
               const FetchStream &stream, const CacheConfig &config,
               bool attribute)
{
    std::uint64_t fp = fingerprintMix(0, config.size_bytes);
    fp = fingerprintMix(fp, config.line_bytes);
    fp = fingerprintMix(fp, config.associativity);
    fp = fingerprintMix(fp,
                        static_cast<std::uint64_t>(config.policy));
    fp = fingerprintMix(fp, config.policy_seed);
    fp = fingerprintMix(fp, stream.size());
    fp = fingerprintMix(fp, stream.lineBytes());
    fp = fingerprintMix(fp, attribute ? 1 : 0);
    fp = fingerprintMix(fp, program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i)
        fp = fingerprintMix(fp, layout.address(static_cast<ProcId>(i)));
    return fp;
}

SimResult
simulateLayout(const Program &program, const Layout &layout,
               const FetchStream &stream, const CacheConfig &config,
               bool attribute, const SimControl *control,
               const SimObservers *observers)
{
    require(stream.lineBytes() == config.line_bytes,
            "simulateLayout: stream line size does not match cache config");
    const bool observed = observers != nullptr && observers->any();
    require(!observed || control == nullptr,
            "simulateLayout: attribution/timeline observers do not "
            "combine with checkpoint/resume (observer state is not "
            "checkpointed)");
    const std::uint64_t fingerprint =
        simFingerprint(program, layout, stream, config, attribute);
    PhaseTimer timer("simulate");
    SimResult result;
    auto run = [&](auto &cache) {
        result = replayDispatch(program, layout, stream, cache,
                                attribute, control, fingerprint,
                                observers);
    };
    if (config.associativity == 1) {
        // One way leaves no replacement choice: every policy
        // degenerates to the direct-mapped model (verified by test),
        // so the branchless fast path serves them all.
        DirectMappedCache cache(config);
        run(cache);
    } else {
        switch (config.policy) {
          case ReplacementPolicy::kLru: {
            PolicyCache<TrueLruPolicy> cache(config);
            run(cache);
            break;
          }
          case ReplacementPolicy::kPlru: {
            PolicyCache<TreePlruPolicy> cache(config);
            run(cache);
            break;
          }
          case ReplacementPolicy::kSrrip: {
            PolicyCache<SrripPolicy> cache(config);
            run(cache);
            break;
          }
          case ReplacementPolicy::kFifo: {
            PolicyCache<FifoPolicy> cache(config);
            run(cache);
            break;
          }
          case ReplacementPolicy::kRandom: {
            PolicyCache<RandomPolicy> cache(config);
            run(cache);
            break;
          }
        }
    }
    if (observed && observers->timeline != nullptr)
        observers->timeline->finish();
    timer.stop();

    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("cache.simulations").add();
    metrics.counter("cache.accesses").add(result.accesses);
    metrics.counter("cache.misses").add(result.misses);
    metrics.counter("cache.evictions").add(result.evictions);
    if (observed && observers->attribution != nullptr) {
        const AttributionSink &sink = *observers->attribution;
        metrics.counter("attribution.evictions").add(sink.evictions());
        metrics.counter("attribution.dropped_pairs")
            .add(sink.droppedPairs());
        metrics.gauge("attribution.tracked_pairs")
            .set(static_cast<double>(sink.trackedPairs()));
    }
    if (observed && observers->taxonomy != nullptr) {
        const TaxonomySink &sink = *observers->taxonomy;
        metrics.counter("taxonomy.compulsory").add(sink.compulsory());
        metrics.counter("taxonomy.capacity").add(sink.capacity());
        metrics.counter("taxonomy.conflict").add(sink.conflict());
        const auto &hist = sink.reuseHistogram();
        for (std::size_t b = 0; b < hist.size(); ++b) {
            if (hist[b] == 0)
                continue;
            metrics.counter(reuseBucketMetricName(b)).add(hist[b]);
        }
    }
    if (logEnabled(LogLevel::kDebug)) {
        logDebug("simulate", "replay finished",
                 {{"cache", config.describe()},
                  {"accesses", result.accesses},
                  {"misses", result.misses},
                  {"evictions", result.evictions},
                  {"miss_rate", result.missRate()},
                  {"completed", result.completed},
                  {"ms", timer.elapsedMs()}});
    }
    return result;
}

double
layoutMissRate(const Program &program, const Layout &layout,
               const FetchStream &stream, const CacheConfig &config)
{
    return simulateLayout(program, layout, stream, config).missRate();
}

} // namespace topo
