#include "topo/cache/simulate.hh"

#include "topo/cache/direct_mapped_cache.hh"
#include "topo/cache/set_associative_cache.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/**
 * Shared replay loop; Cache is DirectMappedCache or
 * SetAssociativeCache, both exposing bool access(uint64).
 */
template <typename Cache>
SimResult
replay(const Program &program, const Layout &layout,
       const FetchStream &stream, Cache &cache, bool attribute)
{
    // Precompute each procedure's base line so the hot loop is a single
    // add + cache probe per reference.
    std::vector<std::uint64_t> base_line(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        base_line[i] =
            layout.startLine(static_cast<ProcId>(i), stream.lineBytes());
    }

    SimResult result;
    if (attribute)
        result.misses_by_proc.assign(program.procCount(), 0);
    result.accesses = stream.size();
    for (const FetchRef &ref : stream.refs()) {
        const std::uint64_t line_addr = base_line[ref.proc] + ref.line;
        if (!cache.access(line_addr)) {
            ++result.misses;
            if (attribute)
                ++result.misses_by_proc[ref.proc];
        }
    }
    return result;
}

} // namespace

SimResult
simulateLayout(const Program &program, const Layout &layout,
               const FetchStream &stream, const CacheConfig &config,
               bool attribute)
{
    require(stream.lineBytes() == config.line_bytes,
            "simulateLayout: stream line size does not match cache config");
    if (config.associativity == 1) {
        DirectMappedCache cache(config);
        return replay(program, layout, stream, cache, attribute);
    }
    SetAssociativeCache cache(config);
    return replay(program, layout, stream, cache, attribute);
}

double
layoutMissRate(const Program &program, const Layout &layout,
               const FetchStream &stream, const CacheConfig &config)
{
    return simulateLayout(program, layout, stream, config).missRate();
}

} // namespace topo
