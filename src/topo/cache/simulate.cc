#include "topo/cache/simulate.hh"

#include "topo/cache/direct_mapped_cache.hh"
#include "topo/cache/set_associative_cache.hh"
#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Emit a progress heartbeat every this many line fetches. */
constexpr std::uint64_t kHeartbeatMask = (1ULL << 23) - 1; // ~8.4M

/**
 * Shared replay loop; Cache is DirectMappedCache or
 * SetAssociativeCache, both exposing bool access(uint64). The
 * heartbeat variant is compiled separately so the default path pays
 * nothing for progress reporting.
 */
template <typename Cache, bool kHeartbeat>
SimResult
replay(const Program &program, const Layout &layout,
       const FetchStream &stream, Cache &cache, bool attribute)
{
    // Precompute each procedure's base line so the hot loop is a single
    // add + cache probe per reference.
    std::vector<std::uint64_t> base_line(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        base_line[i] =
            layout.startLine(static_cast<ProcId>(i), stream.lineBytes());
    }

    SimResult result;
    if (attribute)
        result.misses_by_proc.assign(program.procCount(), 0);
    result.accesses = stream.size();
    std::uint64_t processed = 0;
    for (const FetchRef &ref : stream.refs()) {
        const std::uint64_t line_addr = base_line[ref.proc] + ref.line;
        if (!cache.access(line_addr)) {
            ++result.misses;
            if (attribute)
                ++result.misses_by_proc[ref.proc];
        }
        if constexpr (kHeartbeat) {
            if ((++processed & kHeartbeatMask) == 0) {
                logDebug("simulate", "progress",
                         {{"done", processed},
                          {"total", result.accesses},
                          {"misses", result.misses}});
            }
        }
    }
    (void)processed;
    // Caches start empty and lines never invalidate, so each miss
    // either filled an empty frame or displaced a valid line.
    result.evictions = result.misses - cache.validLineCount();
    return result;
}

template <typename Cache>
SimResult
replayDispatch(const Program &program, const Layout &layout,
               const FetchStream &stream, Cache &cache, bool attribute)
{
    if (logEnabled(LogLevel::kDebug)) {
        return replay<Cache, true>(program, layout, stream, cache,
                                   attribute);
    }
    return replay<Cache, false>(program, layout, stream, cache,
                                attribute);
}

} // namespace

SimResult
simulateLayout(const Program &program, const Layout &layout,
               const FetchStream &stream, const CacheConfig &config,
               bool attribute)
{
    require(stream.lineBytes() == config.line_bytes,
            "simulateLayout: stream line size does not match cache config");
    PhaseTimer timer("simulate");
    SimResult result;
    if (config.associativity == 1) {
        DirectMappedCache cache(config);
        result = replayDispatch(program, layout, stream, cache,
                                attribute);
    } else {
        SetAssociativeCache cache(config);
        result = replayDispatch(program, layout, stream, cache,
                                attribute);
    }
    timer.stop();

    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.counter("cache.simulations").add();
    metrics.counter("cache.accesses").add(result.accesses);
    metrics.counter("cache.misses").add(result.misses);
    metrics.counter("cache.evictions").add(result.evictions);
    if (logEnabled(LogLevel::kDebug)) {
        logDebug("simulate", "replay finished",
                 {{"cache", config.describe()},
                  {"accesses", result.accesses},
                  {"misses", result.misses},
                  {"evictions", result.evictions},
                  {"miss_rate", result.missRate()},
                  {"ms", timer.elapsedMs()}});
    }
    return result;
}

double
layoutMissRate(const Program &program, const Layout &layout,
               const FetchStream &stream, const CacheConfig &config)
{
    return simulateLayout(program, layout, stream, config).missRate();
}

} // namespace topo
