#include "topo/cache/cache_config.hh"

#include <sstream>

#include "topo/util/error.hh"

namespace topo
{

void
failInvalidLineAddr(const char *model)
{
    fail(std::string(model) +
         ": line address 2^64-1 is reserved as the invalid-frame "
         "sentinel and cannot be accessed");
}

void
CacheConfig::validate() const
{
    require(line_bytes > 0, "CacheConfig: zero line size");
    require(size_bytes > 0, "CacheConfig: zero cache size");
    require(size_bytes % line_bytes == 0,
            "CacheConfig: size must be a multiple of the line size");
    require(associativity > 0, "CacheConfig: zero associativity");
    require(lineCount() % associativity == 0,
            "CacheConfig: line count must be divisible by associativity");
    require(setCount() > 0, "CacheConfig: zero sets");
    if (policy == ReplacementPolicy::kPlru) {
        require(associativity <= 64 &&
                    (associativity & (associativity - 1)) == 0,
                "CacheConfig: plru needs a power-of-two associativity "
                "of at most 64");
    }
}

std::string
CacheConfig::describe() const
{
    std::ostringstream oss;
    if (size_bytes % 1024 == 0)
        oss << size_bytes / 1024 << "KB ";
    else
        oss << size_bytes << "B ";
    if (associativity == 1)
        oss << "direct-mapped";
    else
        oss << associativity << "-way set-associative";
    oss << ", " << line_bytes << "B lines";
    // The default policy is implied; spelling it out would change
    // every committed baseline/report string for plain-LRU runs.
    if (policy != ReplacementPolicy::kLru)
        oss << ", " << replacementPolicyName(policy) << " replacement";
    return oss.str();
}

} // namespace topo
