/**
 * @file
 * Reproduces the Section 5.3 m88ksim observation: dcrand is a poor
 * training input for dhry, so cross-input results are inconclusive —
 * but with train == test (the dcrand/dcrand row) GBSC < HKC < PH
 * (paper: 0.13% / 0.19% / 0.23%).
 *
 * For every benchmark we print the miss rate measured on the testing
 * trace and on the training trace itself.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "section53_traintest: train-vs-test measurement.\n"
                     "  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const std::string only = opts.getString("benchmark", "");

    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const DefaultPlacement def;

    TextTable table({"benchmark", "algorithm", "MR on test input",
                     "MR on train input"});
    for (const BenchmarkCase &bench : paperSuite(traceScaleFrom(opts))) {
        if (!only.empty() && bench.name != only)
            continue;
        std::cerr << "running " << bench.name << " ...\n";
        const ProfileBundle bundle(bench, eval);
        const PlacementContext ctx = bundle.makeContext();
        for (const PlacementAlgorithm *algo :
             std::initializer_list<const PlacementAlgorithm *>{
                 &def, &ph, &hkc, &gbsc}) {
            const Layout layout = algo->place(ctx);
            table.addRow({bench.name, algo->name(),
                          fmtPercent(bundle.testMissRate(layout)),
                          fmtPercent(bundle.trainMissRate(layout))});
        }
    }
    table.render(std::cout,
                 "Section 5.3: train/test vs train/train miss rates (" +
                     eval.cache.describe() + ")");
    std::cout << "\nPaper (m88ksim, train==test dcrand): GBSC 0.13%, "
                 "HKC 0.19%, PH 0.23% — ordering, not magnitude, is "
                 "the claim.\n";
    return 0;
}
