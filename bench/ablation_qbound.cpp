/**
 * @file
 * Ablation of the Q byte budget (Section 3: "a bound on Q of twice the
 * cache size works quite well"). Sweeps the budget from 0.5x to 4x the
 * cache size and reports GBSC miss rates.
 */

#include "ablation_common.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    using namespace topo::bench;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_qbound: sweep the Q byte budget.\n"
                     "  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const double trace_scale = opts.getDouble("trace-scale", 0.5);
    TextTable table({"benchmark", "Q budget (x cache)", "GBSC MR"});
    for (const std::string &name : ablationBenchmarks(opts)) {
        const BenchmarkCase bench = paperBenchmark(name, trace_scale);
        for (double factor : {0.5, 1.0, 2.0, 4.0}) {
            std::cerr << name << " q-factor " << factor << " ...\n";
            EvalOptions eval = evalOptionsFrom(opts);
            eval.q_budget_factor = factor;
            table.addRow({name, fmtDouble(factor, 1),
                          fmtPercent(gbscMissRate(bench, eval))});
        }
    }
    table.render(std::cout,
                 "Ablation: TRG queue budget (paper default: 2x cache "
                 "size)");
    return 0;
}
