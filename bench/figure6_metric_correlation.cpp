/**
 * @file
 * Reproduces Figure 6: correlation between conflict metrics and real
 * cache misses. 80 layouts are derived from the GBSC placement of the
 * go benchmark by re-offsetting 0-50 random procedures; for each
 * layout we record the measured miss rate, the TRG_place metric, and
 * the WCG metric. The paper's claim: the TRG metric is linear in the
 * miss count, the WCG metric is not.
 *
 * Knobs: --layouts (default 80), --max-moved (default 50),
 * --benchmark (default go), --trace-scale plus standard knobs.
 */

#include <iostream>

#include "topo/eval/conflict_metric.hh"
#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/util/rng.hh"
#include "topo/util/stats.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "figure6_metric_correlation: reproduce Figure 6.\n"
                     "  --layouts=N --max-moved=N --benchmark=NAME\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const std::size_t layouts =
        static_cast<std::size_t>(opts.getInt("layouts", 80));
    const std::uint64_t max_moved =
        static_cast<std::uint64_t>(opts.getInt("max-moved", 50));
    const std::string name = opts.getString("benchmark", "go");
    // The paper correlates the metric against misses of the profiled
    // input; measuring on the test input instead adds train/test
    // drift on top (choose with --measure=test).
    const bool on_train = opts.getString("measure", "train") == "train";

    std::cerr << "profiling " << name << " ...\n";
    const BenchmarkCase bench =
        paperBenchmark(name, traceScaleFrom(opts));
    const ProfileBundle bundle(bench, eval);
    const PlacementContext ctx = bundle.makeContext();
    const Gbsc gbsc;
    const Layout base = gbsc.place(ctx);
    const std::vector<ProcId> order = base.orderByAddress();
    const std::uint32_t cache_lines = eval.cache.lineCount();

    std::vector<double> miss_rates, trg_metrics, wcg_metrics;
    Rng rng(4242);
    TextTable points({"layout", "moved", "miss_rate", "trg_metric",
                      "wcg_metric"});
    for (std::size_t k = 0; k < layouts; ++k) {
        // Randomly change the cache-relative offsets of 0..max_moved
        // procedures, then re-realise the linear layout.
        std::vector<std::uint32_t> offsets =
            layoutOffsets(bundle.program(), base, eval.cache);
        const std::uint64_t moved = rng.nextBelow(max_moved + 1);
        for (std::uint64_t m = 0; m < moved; ++m) {
            const ProcId victim = static_cast<ProcId>(
                rng.nextBelow(bundle.program().procCount()));
            offsets[victim] =
                static_cast<std::uint32_t>(rng.nextBelow(cache_lines));
        }
        const Layout layout = Layout::fromCacheOffsets(
            bundle.program(), order, offsets, eval.cache.line_bytes,
            cache_lines);
        const double mr = on_train ? bundle.trainMissRate(layout)
                                   : bundle.testMissRate(layout);
        const double trg_metric = trgConflictMetric(ctx, layout);
        const double wcg_metric = wcgConflictMetric(ctx, layout);
        miss_rates.push_back(mr);
        trg_metrics.push_back(trg_metric);
        wcg_metrics.push_back(wcg_metric);
        points.addRow({std::to_string(k), std::to_string(moved),
                       fmtPercent(mr), fmtDouble(trg_metric, 0),
                       fmtDouble(wcg_metric, 0)});
    }

    std::cout << "Figure 6: conflict metric vs cache misses ("
              << layouts << " randomised " << name << " layouts)\n";
    points.renderCsv(std::cout);

    TextTable summary({"metric", "pearson r", "r^2 (linear fit)"});
    const LinearFit trg_fit = leastSquares(trg_metrics, miss_rates);
    const LinearFit wcg_fit = leastSquares(wcg_metrics, miss_rates);
    summary.addRow({"TRG_place (GBSC)",
                    fmtDouble(pearson(trg_metrics, miss_rates), 3),
                    fmtDouble(trg_fit.r2, 3)});
    summary.addRow({"WCG (PH-style)",
                    fmtDouble(pearson(wcg_metrics, miss_rates), 3),
                    fmtDouble(wcg_fit.r2, 3)});
    std::cout << '\n';
    summary.render(std::cout, "Correlation summary");
    std::cout << "\nPaper: the TRG metric lies close to the diagonal "
                 "(strong linear relation); the WCG metric does not.\n";
    return 0;
}
