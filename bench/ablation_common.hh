/**
 * @file
 * Shared helper for the ablation benches: run GBSC (and the default
 * layout for reference) on a set of benchmarks under one EvalOptions
 * configuration and report test-input miss rates.
 */

#ifndef TOPO_BENCH_ABLATION_COMMON_HH
#define TOPO_BENCH_ABLATION_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/util/table.hh"

namespace topo::bench
{

/** Benchmarks used by the ablations (fast, representative subset). */
inline std::vector<std::string>
ablationBenchmarks(const Options &opts)
{
    const std::string only = opts.getString("benchmark", "");
    if (!only.empty())
        return {only};
    return {"go", "perl", "vortex"};
}

/** GBSC test miss rate for one benchmark under one configuration. */
inline double
gbscMissRate(const BenchmarkCase &bench, const EvalOptions &eval)
{
    const ProfileBundle bundle(bench, eval);
    const Gbsc gbsc;
    return bundle.testMissRate(gbsc.place(bundle.makeContext()));
}

} // namespace topo::bench

#endif // TOPO_BENCH_ABLATION_COMMON_HH
