/**
 * @file
 * Microbenchmarks (google-benchmark) for the Section 4.4 practicality
 * claims: TRG construction throughput, merge_nodes cost as P and C
 * grow (the paper's crude P^3 C^2 bound), full GBSC placement time,
 * and cache-simulation throughput.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "topo/cache/simulate.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/eval/experiment.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/profile/temporal_queue.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/trace/trace_io.hh"
#include "topo/util/flat_map.hh"
#include "topo/util/rng.hh"
#include "topo/workload/synthetic_program.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace
{

using namespace topo;

/** Build a reusable workload/trace of a given popular-set size. */
struct Scenario
{
    WorkloadModel model;
    Trace trace{0};

    explicit Scenario(std::uint32_t popular, std::uint64_t runs)
    {
        SyntheticSpec spec;
        spec.name = "bench";
        spec.proc_count = popular * 3;
        spec.popular_count = popular;
        spec.popular_bytes = popular * 1200ULL;
        spec.total_bytes = spec.popular_bytes * 4;
        spec.phase_count = 4;
        spec.ranks = 4;
        spec.seed = 5;
        model = buildSyntheticWorkload(spec);
        WorkloadInput input;
        input.seed = 6;
        input.target_runs = runs;
        trace = synthesizeTrace(model, input);
    }
};

const Scenario &
scenario(std::uint32_t popular)
{
    static std::map<std::uint32_t, std::unique_ptr<Scenario>> cache;
    auto &slot = cache[popular];
    if (!slot)
        slot = std::make_unique<Scenario>(popular, 120000);
    return *slot;
}

void
BM_TrgBuild(benchmark::State &state)
{
    const Scenario &s = scenario(64);
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 16 * 1024;
    for (auto _ : state) {
        const TrgBuildResult trg =
            buildTrgs(s.model.program, chunks, s.trace, opts);
        benchmark::DoNotOptimize(trg.select.edgeCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(s.trace.size()));
}
BENCHMARK(BM_TrgBuild)->Unit(benchmark::kMillisecond);

void
BM_MergeNodes(benchmark::State &state)
{
    // Merge two half-populated nodes at a given cache-line count C:
    // the inner offset scan is the paper's C^2 term.
    const std::uint32_t cache_lines =
        static_cast<std::uint32_t>(state.range(0));
    const Scenario &s = scenario(64);
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 2ULL * cache_lines * 32ULL;
    const TrgBuildResult trg =
        buildTrgs(s.model.program, chunks, s.trace, opts);
    PlacementContext ctx;
    ctx.program = &s.model.program;
    ctx.cache = CacheConfig{cache_lines * 32, 32, 1};
    ctx.chunks = &chunks;
    ctx.trg_select = &trg.select;
    ctx.trg_place = &trg.place;
    // Two nodes, each holding half of the hot procedures stacked at
    // arbitrary offsets.
    GbscNode n1, n2;
    Rng rng(11);
    for (ProcId p = 0; p < s.model.program.procCount(); ++p) {
        if (s.model.program.proc(p).name.rfind("hot_", 0) != 0)
            continue;
        const auto offset =
            static_cast<std::uint32_t>(rng.nextBelow(cache_lines));
        ((p % 2) ? n1 : n2).procs.emplace_back(p, offset);
    }
    for (auto _ : state) {
        const GbscNode merged = Gbsc::mergeNodes(ctx, n1, n2);
        benchmark::DoNotOptimize(merged.procs.size());
    }
}
BENCHMARK(BM_MergeNodes)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void
BM_GbscPlacement(benchmark::State &state)
{
    // Whole-algorithm runtime as the popular-procedure count P grows;
    // the paper reports tens of seconds to minutes for P in 30-150 on
    // 1997 hardware.
    const std::uint32_t popular =
        static_cast<std::uint32_t>(state.range(0));
    const Scenario &s = scenario(popular);
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 16 * 1024;
    const TrgBuildResult trg =
        buildTrgs(s.model.program, chunks, s.trace, opts);
    PlacementContext ctx;
    ctx.program = &s.model.program;
    ctx.cache = CacheConfig::paperDefault();
    ctx.chunks = &chunks;
    ctx.trg_select = &trg.select;
    ctx.trg_place = &trg.place;
    const Gbsc gbsc;
    for (auto _ : state) {
        const Layout layout = gbsc.place(ctx);
        benchmark::DoNotOptimize(layout.extent(s.model.program));
    }
}
BENCHMARK(BM_GbscPlacement)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void
BM_PettisHansenPlacement(benchmark::State &state)
{
    const Scenario &s = scenario(128);
    const WeightedGraph wcg = buildWcg(s.model.program, s.trace);
    PlacementContext ctx;
    ctx.program = &s.model.program;
    ctx.cache = CacheConfig::paperDefault();
    ctx.wcg = &wcg;
    const PettisHansen ph;
    for (auto _ : state) {
        const Layout layout = ph.place(ctx);
        benchmark::DoNotOptimize(layout.extent(s.model.program));
    }
}
BENCHMARK(BM_PettisHansenPlacement)->Unit(benchmark::kMillisecond);

void
BM_CacheSimulation(benchmark::State &state)
{
    const Scenario &s = scenario(64);
    const CacheConfig cache = CacheConfig::paperDefault();
    const FetchStream stream(s.model.program, s.trace,
                             cache.line_bytes);
    const Layout layout =
        Layout::defaultOrder(s.model.program, cache.line_bytes);
    for (auto _ : state) {
        const SimResult result =
            simulateLayout(s.model.program, layout, stream, cache);
        benchmark::DoNotOptimize(result.misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_CacheSimulation)->Unit(benchmark::kMillisecond);

void
BM_TemporalQueueReference(benchmark::State &state)
{
    // The Section 3 per-reference path (byte-vector residency test,
    // intrusive-list splice, between-walk) on a loopy block stream.
    constexpr std::size_t kBlocks = 4096;
    std::vector<std::uint32_t> sizes(kBlocks);
    Rng size_rng(17);
    for (std::uint32_t &size : sizes)
        size = 64 + static_cast<std::uint32_t>(size_rng.nextBelow(192));
    // Pre-drawn reference stream with loop-like locality: mostly small
    // strides within a moving window, occasional far jumps.
    std::vector<BlockId> refs(1 << 16);
    Rng ref_rng(18);
    BlockId at = 0;
    for (BlockId &ref : refs) {
        if (ref_rng.nextBool(0.05))
            at = static_cast<BlockId>(ref_rng.nextBelow(kBlocks));
        else
            at = static_cast<BlockId>(
                (at + 1 + ref_rng.nextBelow(16)) % kBlocks);
        ref = at;
    }
    TemporalQueue queue(sizes, 32 * 1024);
    std::vector<BlockId> between;
    for (auto _ : state) {
        std::uint64_t walked = 0;
        for (const BlockId ref : refs) {
            if (queue.reference(ref, between))
                walked += between.size();
        }
        benchmark::DoNotOptimize(walked);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(refs.size()));
}
BENCHMARK(BM_TemporalQueueReference)->Unit(benchmark::kMillisecond);

/** Shared key stream for the map-accumulation pair of benchmarks. */
const std::vector<std::uint64_t> &
pairKeyStream()
{
    // Packed (prev << 32 | next) procedure-pair keys with the locality
    // a real trace produces: a few hundred distinct pairs, heavily
    // skewed towards repeats — the PairDatabase/WeightedGraph
    // accumulation profile.
    static const std::vector<std::uint64_t> keys = [] {
        std::vector<std::uint64_t> out(1 << 18);
        Rng rng(23);
        std::uint64_t prev = 0;
        for (std::uint64_t &key : out) {
            const std::uint64_t next =
                rng.nextBool(0.8) ? (prev + 1) % 64
                                  : rng.nextBelow(1024);
            key = (prev << 32) | next;
            prev = next;
        }
        return out;
    }();
    return keys;
}

void
BM_FlatMapAccumulate(benchmark::State &state)
{
    const std::vector<std::uint64_t> &keys = pairKeyStream();
    for (auto _ : state) {
        util::FlatMap<std::uint64_t, std::uint64_t> map;
        for (const std::uint64_t key : keys)
            map[key] += 1;
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapAccumulate)->Unit(benchmark::kMillisecond);

void
BM_UnorderedMapAccumulate(benchmark::State &state)
{
    // The container FlatMap replaced, on the identical key stream.
    const std::vector<std::uint64_t> &keys = pairKeyStream();
    for (auto _ : state) {
        std::unordered_map<std::uint64_t, std::uint64_t> map;
        for (const std::uint64_t key : keys)
            map[key] += 1;
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_UnorderedMapAccumulate)->Unit(benchmark::kMillisecond);

/** Write the scenario trace to a temp file once; return its path. */
const std::string &
benchTracePath()
{
    static const std::string path = [] {
        const std::string p = "/tmp/topo_perf_microbench_trace.tpb";
        saveBinaryTrace(p, scenario(64).trace);
        return p;
    }();
    return path;
}

void
BM_TraceLoadMmap(benchmark::State &state)
{
    const std::string &path = benchTracePath();
    TraceReadOptions ropts;
    ropts.mmap = TraceMmapMode::kOn;
    std::size_t records = 0;
    for (auto _ : state) {
        const Trace trace = loadBinaryTrace(path, ropts);
        records = trace.size();
        benchmark::DoNotOptimize(records);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(records));
}
BENCHMARK(BM_TraceLoadMmap)->Unit(benchmark::kMillisecond);

void
BM_TraceLoadStream(benchmark::State &state)
{
    const std::string &path = benchTracePath();
    TraceReadOptions ropts;
    ropts.mmap = TraceMmapMode::kOff;
    std::size_t records = 0;
    for (auto _ : state) {
        const Trace trace = loadBinaryTrace(path, ropts);
        records = trace.size();
        benchmark::DoNotOptimize(records);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(records));
}
BENCHMARK(BM_TraceLoadStream)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
