/**
 * @file
 * Microbenchmarks (google-benchmark) for the Section 4.4 practicality
 * claims: TRG construction throughput, merge_nodes cost as P and C
 * grow (the paper's crude P^3 C^2 bound), full GBSC placement time,
 * and cache-simulation throughput.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "topo/cache/simulate.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/eval/experiment.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/util/rng.hh"
#include "topo/workload/synthetic_program.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace
{

using namespace topo;

/** Build a reusable workload/trace of a given popular-set size. */
struct Scenario
{
    WorkloadModel model;
    Trace trace{0};

    explicit Scenario(std::uint32_t popular, std::uint64_t runs)
    {
        SyntheticSpec spec;
        spec.name = "bench";
        spec.proc_count = popular * 3;
        spec.popular_count = popular;
        spec.popular_bytes = popular * 1200ULL;
        spec.total_bytes = spec.popular_bytes * 4;
        spec.phase_count = 4;
        spec.ranks = 4;
        spec.seed = 5;
        model = buildSyntheticWorkload(spec);
        WorkloadInput input;
        input.seed = 6;
        input.target_runs = runs;
        trace = synthesizeTrace(model, input);
    }
};

const Scenario &
scenario(std::uint32_t popular)
{
    static std::map<std::uint32_t, std::unique_ptr<Scenario>> cache;
    auto &slot = cache[popular];
    if (!slot)
        slot = std::make_unique<Scenario>(popular, 120000);
    return *slot;
}

void
BM_TrgBuild(benchmark::State &state)
{
    const Scenario &s = scenario(64);
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 16 * 1024;
    for (auto _ : state) {
        const TrgBuildResult trg =
            buildTrgs(s.model.program, chunks, s.trace, opts);
        benchmark::DoNotOptimize(trg.select.edgeCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(s.trace.size()));
}
BENCHMARK(BM_TrgBuild)->Unit(benchmark::kMillisecond);

void
BM_MergeNodes(benchmark::State &state)
{
    // Merge two half-populated nodes at a given cache-line count C:
    // the inner offset scan is the paper's C^2 term.
    const std::uint32_t cache_lines =
        static_cast<std::uint32_t>(state.range(0));
    const Scenario &s = scenario(64);
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 2ULL * cache_lines * 32ULL;
    const TrgBuildResult trg =
        buildTrgs(s.model.program, chunks, s.trace, opts);
    PlacementContext ctx;
    ctx.program = &s.model.program;
    ctx.cache = CacheConfig{cache_lines * 32, 32, 1};
    ctx.chunks = &chunks;
    ctx.trg_select = &trg.select;
    ctx.trg_place = &trg.place;
    // Two nodes, each holding half of the hot procedures stacked at
    // arbitrary offsets.
    GbscNode n1, n2;
    Rng rng(11);
    for (ProcId p = 0; p < s.model.program.procCount(); ++p) {
        if (s.model.program.proc(p).name.rfind("hot_", 0) != 0)
            continue;
        const auto offset =
            static_cast<std::uint32_t>(rng.nextBelow(cache_lines));
        ((p % 2) ? n1 : n2).procs.emplace_back(p, offset);
    }
    for (auto _ : state) {
        const GbscNode merged = Gbsc::mergeNodes(ctx, n1, n2);
        benchmark::DoNotOptimize(merged.procs.size());
    }
}
BENCHMARK(BM_MergeNodes)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void
BM_GbscPlacement(benchmark::State &state)
{
    // Whole-algorithm runtime as the popular-procedure count P grows;
    // the paper reports tens of seconds to minutes for P in 30-150 on
    // 1997 hardware.
    const std::uint32_t popular =
        static_cast<std::uint32_t>(state.range(0));
    const Scenario &s = scenario(popular);
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 16 * 1024;
    const TrgBuildResult trg =
        buildTrgs(s.model.program, chunks, s.trace, opts);
    PlacementContext ctx;
    ctx.program = &s.model.program;
    ctx.cache = CacheConfig::paperDefault();
    ctx.chunks = &chunks;
    ctx.trg_select = &trg.select;
    ctx.trg_place = &trg.place;
    const Gbsc gbsc;
    for (auto _ : state) {
        const Layout layout = gbsc.place(ctx);
        benchmark::DoNotOptimize(layout.extent(s.model.program));
    }
}
BENCHMARK(BM_GbscPlacement)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void
BM_PettisHansenPlacement(benchmark::State &state)
{
    const Scenario &s = scenario(128);
    const WeightedGraph wcg = buildWcg(s.model.program, s.trace);
    PlacementContext ctx;
    ctx.program = &s.model.program;
    ctx.cache = CacheConfig::paperDefault();
    ctx.wcg = &wcg;
    const PettisHansen ph;
    for (auto _ : state) {
        const Layout layout = ph.place(ctx);
        benchmark::DoNotOptimize(layout.extent(s.model.program));
    }
}
BENCHMARK(BM_PettisHansenPlacement)->Unit(benchmark::kMillisecond);

void
BM_CacheSimulation(benchmark::State &state)
{
    const Scenario &s = scenario(64);
    const CacheConfig cache = CacheConfig::paperDefault();
    const FetchStream stream(s.model.program, s.trace,
                             cache.line_bytes);
    const Layout layout =
        Layout::defaultOrder(s.model.program, cache.line_bytes);
    for (auto _ : state) {
        const SimResult result =
            simulateLayout(s.model.program, layout, stream, cache);
        benchmark::DoNotOptimize(result.misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_CacheSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
