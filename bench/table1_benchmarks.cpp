/**
 * @file
 * Reproduces Table 1: benchmark details — static sizes and counts,
 * popular subset, train/test inputs and trace lengths, the default
 * layout's miss rate, and the average Q size during TRG construction.
 *
 * Knobs: --trace-scale (TOPO_TRACE_SCALE), --cache-kb, --line-bytes,
 * --chunk-bytes, --coverage, --csv.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/util/options.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "table1_benchmarks: reproduce Table 1.\n"
                     "  --trace-scale=F --cache-kb=N --line-bytes=N\n"
                     "  --chunk-bytes=N --coverage=F --csv\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = traceScaleFrom(opts);

    std::vector<Table1Row> rows;
    for (const BenchmarkCase &bench : paperSuite(scale)) {
        const ProfileBundle bundle(bench, eval);
        rows.push_back(computeTable1Row(bench, bundle));
        std::cerr << "profiled " << bench.name << "\n";
    }
    printTable1(std::cout, rows);
    std::cout << "\nCache: " << eval.cache.describe()
              << "; chunk " << eval.chunk_bytes << " B; Q budget "
              << eval.q_budget_factor << "x cache; coverage "
              << eval.popularity.coverage << "\n";
    std::cout << "Paper (Table 1) default-layout miss rates for "
                 "reference: gcc 4.86%, go 3.34%, ghostscript 2.63%, "
                 "m88ksim 2.92%, perl 4.19%, vortex 6.29%.\n";
    return 0;
}
