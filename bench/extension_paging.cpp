/**
 * @file
 * Section 4.3 extension: page-locality consequences of placement.
 *
 * The paper notes the final linear list could also be chosen with
 * paging in mind. This bench measures, for each algorithm's layout:
 * the dynamic page working set, page switches per kilo-access, and
 * LRU page faults — showing the trade-off surface a paging-aware
 * emitter would optimise.
 */

#include <iostream>

#include "topo/eval/page_metric.hh"
#include "topo/eval/reports.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "extension_paging: page locality per layout.\n"
                     "  --benchmark=NAME --trace-scale=F --page-kb=N "
                     "--resident-pages=N\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = opts.getDouble("trace-scale", 0.3);
    const std::string only = opts.getString("benchmark", "");
    const std::uint32_t page_bytes = static_cast<std::uint32_t>(
        opts.getInt("page-kb", 4) * 1024);
    const std::uint32_t resident = static_cast<std::uint32_t>(
        opts.getInt("resident-pages", 16));

    const DefaultPlacement def;
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;

    TextTable table({"benchmark", "algorithm", "miss rate",
                     "pages touched", "switches/kacc", "LRU faults"});
    for (const BenchmarkCase &bench : paperSuite(scale)) {
        if (!only.empty() && bench.name != only)
            continue;
        std::cerr << "running " << bench.name << " ...\n";
        const ProfileBundle bundle(bench, eval);
        const PlacementContext ctx = bundle.makeContext();
        for (const PlacementAlgorithm *algo :
             std::initializer_list<const PlacementAlgorithm *>{
                 &def, &ph, &hkc, &gbsc}) {
            const Layout layout = algo->place(ctx);
            const PageStats pages =
                measurePageStats(bundle.program(), layout,
                                 bundle.testStream(), page_bytes,
                                 resident);
            table.addRow(
                {bench.name, algo->name(),
                 fmtPercent(bundle.testMissRate(layout)),
                 std::to_string(pages.pages_touched),
                 fmtDouble(pages.switchesPerKiloAccess(), 2),
                 std::to_string(pages.lru_faults)});
        }
    }
    table.render(std::cout,
                 "Section 4.3 extension: page locality (page size " +
                     std::to_string(page_bytes / 1024) + "KB, " +
                     std::to_string(resident) + " resident pages)");
    std::cout << "\nCache-conscious layouts spread hot code across "
                 "cache-sized regions; the page working set is the "
                 "price the paper's Section 4.3 remark alludes to.\n";
    return 0;
}
