/**
 * @file
 * Microsuite comparison: every algorithm on every adversarial micro
 * workload, with the case's lesson printed alongside. The known-best
 * structure of each case makes this the most readable head-to-head of
 * the repository.
 */

#include <iostream>

#include "topo/cache/attribution.hh"
#include "topo/cache/simulate.hh"
#include "topo/eval/experiment.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/placement/popularity.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/util/table.hh"
#include "topo/workload/microsuite.hh"

int
main()
{
    using namespace topo;
    const DefaultPlacement def;
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;

    TextTable table({"case", "cache", "default", "PH", "HKC", "GBSC",
                     "default's worst conflict"});
    std::vector<std::pair<std::string, std::string>> lessons;
    for (const MicroCase &mc : microsuite()) {
        const ChunkMap chunks(mc.program, 256);
        const TraceStats stats = computeTraceStats(mc.program, mc.trace);
        const PopularSet popular = selectPopular(mc.program, stats);
        const WeightedGraph wcg = buildWcg(mc.program, mc.trace);
        TrgBuildOptions opts;
        opts.byte_budget = 2 * mc.cache.size_bytes;
        opts.popular = &popular.mask;
        const TrgBuildResult trgs =
            buildTrgs(mc.program, chunks, mc.trace, opts);

        PlacementContext ctx;
        ctx.program = &mc.program;
        ctx.cache = mc.cache;
        ctx.chunks = &chunks;
        ctx.wcg = &wcg;
        ctx.trg_select = &trgs.select;
        ctx.trg_place = &trgs.place;
        ctx.popular = popular.mask;
        ctx.heat.assign(mc.program.procCount(), 0.0);
        for (std::size_t i = 0; i < ctx.heat.size(); ++i)
            ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);

        const FetchStream stream(mc.program, mc.trace,
                                 mc.cache.line_bytes);
        auto mr = [&](const PlacementAlgorithm &algo) {
            return fmtPercent(layoutMissRate(
                mc.program, algo.place(ctx), stream, mc.cache));
        };
        // Attribute the default layout's misses so each row also names
        // the procedure pair that thrashes before placement fixes it.
        const Layout base = def.place(ctx);
        AttributionSink sink(mc.program, base, mc.cache,
                             mc.cache.line_bytes);
        SimObservers observers;
        observers.attribution = &sink;
        simulateLayout(mc.program, base, stream, mc.cache, false,
                       nullptr, &observers);
        const std::vector<ConflictPair> top = sink.topPairs(1);
        const std::string conflict =
            top.empty() ? "-"
                        : mc.program.proc(top[0].evictor).name +
                              " evicts " +
                              mc.program.proc(top[0].victim).name +
                              " x" + std::to_string(top[0].count);
        table.addRow({mc.name, mc.cache.describe(), mr(def), mr(ph),
                      mr(hkc), mr(gbsc), conflict});
        lessons.emplace_back(mc.name, mc.lesson);
    }
    table.render(std::cout,
                 "Microsuite: adversarial cases with known structure");
    std::cout << '\n';
    for (const auto &[name, lesson] : lessons)
        std::cout << "  " << name << ": " << lesson << "\n";
    return 0;
}
