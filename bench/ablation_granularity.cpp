/**
 * @file
 * Ablation: placement granularity (Section 1's "code blocks of any
 * granularity"). Compares GBSC placing whole procedures against GBSC
 * placing *exploded* chunk-procedures — an upper bound on what any
 * whole-procedure placement could achieve, since every chunk's cache
 * line is chosen independently. The gap between the rows is the price
 * of the whole-procedure constraint.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/splitting.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/util/table.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace
{

using namespace topo;

double
gbscMissRate(const Program &program, const Trace &train,
             const Trace &test, const EvalOptions &eval)
{
    const ChunkMap chunks(program, eval.chunk_bytes);
    const TraceStats stats = computeTraceStats(program, train);
    const PopularSet popular =
        selectPopular(program, stats, eval.popularity);
    TrgBuildOptions topts;
    topts.byte_budget = static_cast<std::uint64_t>(
        eval.q_budget_factor * eval.cache.size_bytes);
    topts.popular = &popular.mask;
    const TrgBuildResult trgs = buildTrgs(program, chunks, train, topts);
    PlacementContext ctx;
    ctx.program = &program;
    ctx.cache = eval.cache;
    ctx.chunks = &chunks;
    ctx.trg_select = &trgs.select;
    ctx.trg_place = &trgs.place;
    ctx.popular = popular.mask;
    ctx.heat.assign(program.procCount(), 0.0);
    for (std::size_t i = 0; i < program.procCount(); ++i)
        ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);
    const Gbsc gbsc;
    const Layout layout = gbsc.place(ctx);
    const FetchStream stream(program, test, eval.cache.line_bytes);
    return layoutMissRate(program, layout, stream, eval.cache);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_granularity: whole procedures vs free "
                     "chunks.\n  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = opts.getDouble("trace-scale", 0.25);
    const std::string only = opts.getString("benchmark", "");

    TextTable table({"benchmark", "whole procedures", "free chunks",
                     "constraint cost"});
    for (const BenchmarkCase &bench : paperSuite(scale)) {
        if (!only.empty() && bench.name != only)
            continue;
        std::cerr << "running " << bench.name << " ...\n";
        const Trace train = synthesizeTrace(bench.model, bench.train);
        const Trace test = synthesizeTrace(bench.model, bench.test);
        const double whole =
            gbscMissRate(bench.model.program, train, test, eval);

        const SplitProgram exploded =
            explodeProcedures(bench.model.program, eval.chunk_bytes);
        const double chunks = gbscMissRate(
            exploded.program(), exploded.transform(train),
            exploded.transform(test), eval);
        const std::string cost =
            chunks > 0.0 ? fmtDouble(whole / chunks, 2) + "x"
                         : std::string("-");
        table.addRow({bench.name, fmtPercent(whole),
                      fmtPercent(chunks), cost});
    }
    table.render(std::cout,
                 "Ablation: placement granularity (" +
                     eval.cache.describe() + ", chunks of " +
                     std::to_string(eval.chunk_bytes) + " B)");
    std::cout << "\nFree chunk placement enlarges the search space the "
                 "way basic-block-level layout does — but the same "
                 "greedy heuristic does not automatically exploit it "
                 "(expect ratios near 1.0x both ways). This supports "
                 "the paper's choice of whole-procedure placement plus "
                 "chunk-level *information*: the finer the blocks, the "
                 "more the greedy order, not the granularity, limits "
                 "quality.\n";
    return 0;
}
