/**
 * @file
 * Ablation of the popularity threshold (Section 4 adopts Hashemi et
 * al.'s popular-procedure restriction "for efficiency reasons").
 * Sweeps the dynamic-byte coverage of the popular set and reports the
 * popular-set size and the resulting GBSC miss rate.
 */

#include "ablation_common.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    using namespace topo::bench;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_popularity: sweep popular-set coverage.\n"
                     "  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const double trace_scale = opts.getDouble("trace-scale", 0.5);
    TextTable table({"benchmark", "coverage", "popular procs",
                     "popular bytes", "GBSC MR"});
    for (const std::string &name : ablationBenchmarks(opts)) {
        const BenchmarkCase bench = paperBenchmark(name, trace_scale);
        for (double coverage : {0.90, 0.95, 0.99, 0.999, 1.0}) {
            std::cerr << name << " coverage " << coverage << " ...\n";
            EvalOptions eval = evalOptionsFrom(opts);
            eval.popularity.coverage = coverage;
            const ProfileBundle bundle(bench, eval);
            const Gbsc gbsc;
            const double mr =
                bundle.testMissRate(gbsc.place(bundle.makeContext()));
            table.addRow({name, fmtDouble(coverage, 3),
                          std::to_string(bundle.popular().count),
                          fmtBytes(bundle.popular().bytes),
                          fmtPercent(mr)});
        }
    }
    table.render(std::cout,
                 "Ablation: popular-set coverage (library default: "
                 "0.999)");
    return 0;
}
