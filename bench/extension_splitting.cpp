/**
 * @file
 * Section 8 extension: procedure splitting combined with GBSC.
 *
 * For each benchmark: GBSC on the original program vs GBSC on the
 * split program (hot/cold separation from the training trace, both
 * traces remapped). Reports the popular-footprint shrinkage and the
 * test-input miss rates.
 */

#include <iostream>

#include "topo/eval/page_metric.hh"
#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/splitting.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/util/table.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace
{

using namespace topo;

struct SplitResult
{
    double test_mr = 0.0;
    double train_mr = 0.0;
    std::uint64_t popular_bytes = 0;
    std::uint64_t pages_touched = 0;
};

SplitResult
gbscMissRate(const Program &program, const Trace &train,
             const Trace &test, const EvalOptions &eval)
{
    const ChunkMap chunks(program, eval.chunk_bytes);
    const TraceStats stats = computeTraceStats(program, train);
    const PopularSet popular =
        selectPopular(program, stats, eval.popularity);
    TrgBuildOptions topts;
    topts.byte_budget = static_cast<std::uint64_t>(
        eval.q_budget_factor * eval.cache.size_bytes);
    topts.popular = &popular.mask;
    const TrgBuildResult trgs = buildTrgs(program, chunks, train, topts);
    PlacementContext ctx;
    ctx.program = &program;
    ctx.cache = eval.cache;
    ctx.chunks = &chunks;
    ctx.trg_select = &trgs.select;
    ctx.trg_place = &trgs.place;
    ctx.popular = popular.mask;
    ctx.heat.assign(program.procCount(), 0.0);
    for (std::size_t i = 0; i < program.procCount(); ++i)
        ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);
    const Gbsc gbsc;
    const Layout layout = gbsc.place(ctx);
    SplitResult result;
    result.popular_bytes = popular.bytes;
    const FetchStream test_stream(program, test, eval.cache.line_bytes);
    result.test_mr =
        layoutMissRate(program, layout, test_stream, eval.cache);
    const FetchStream train_stream(program, train,
                                   eval.cache.line_bytes);
    result.train_mr =
        layoutMissRate(program, layout, train_stream, eval.cache);
    result.pages_touched =
        measurePageStats(program, layout, test_stream).pages_touched;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "extension_splitting: GBSC with/without procedure "
                     "splitting.\n  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = opts.getDouble("trace-scale", 0.4);
    const std::string only = opts.getString("benchmark", "");

    TextTable table({"benchmark", "test MR", "test MR +split",
                     "train MR", "train MR +split", "popular bytes",
                     "popular +split", "pages", "pages +split"});
    for (const BenchmarkCase &bench : paperSuite(scale)) {
        if (!only.empty() && bench.name != only)
            continue;
        std::cerr << "running " << bench.name << " ...\n";
        const Trace train = synthesizeTrace(bench.model, bench.train);
        const Trace test = synthesizeTrace(bench.model, bench.test);

        const SplitResult plain =
            gbscMissRate(bench.model.program, train, test, eval);

        const SplitProgram split =
            splitProcedures(bench.model.program, train);
        const Trace train_split = split.transform(train);
        const Trace test_split = split.transform(test);
        const SplitResult with_split = gbscMissRate(
            split.program(), train_split, test_split, eval);

        table.addRow({bench.name, fmtPercent(plain.test_mr),
                      fmtPercent(with_split.test_mr),
                      fmtPercent(plain.train_mr),
                      fmtPercent(with_split.train_mr),
                      fmtBytes(plain.popular_bytes),
                      fmtBytes(with_split.popular_bytes),
                      std::to_string(plain.pages_touched),
                      std::to_string(with_split.pages_touched)});
    }
    table.render(std::cout,
                 "Section 8 extension: procedure splitting + GBSC (" +
                     eval.cache.describe() + ")");
    std::cout << "\nPaper: splitting is orthogonal to placement and "
                 "combinable for further improvement. In this "
                 "reproduction GBSC's chunk-granularity TRG already "
                 "treats dead regions inside procedures as free "
                 "spacing, so splitting's conflict-miss effect is "
                 "within greedy noise; its clear wins are the hot "
                 "footprint (popular bytes) and the dynamic page "
                 "working set — precisely the paging dimension of "
                 "Section 4.3. Chunks cold in training but warm in "
                 "testing can erode the gain under input drift.\n";
    return 0;
}
