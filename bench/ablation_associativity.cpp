/**
 * @file
 * Ablation over cache associativity: how much of the placement win
 * survives as associativity absorbs conflicts (1/2/4/8-way at a fixed
 * 8 KB capacity). The §6 motivation in one table: at 1-way placement
 * matters most; higher associativity narrows the gap.
 */

#include "ablation_common.hh"

#include "topo/placement/pettis_hansen.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    using namespace topo::bench;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_associativity: sweep associativity.\n"
                     "  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const double trace_scale = opts.getDouble("trace-scale", 0.4);
    TextTable table({"benchmark", "assoc", "default MR", "GBSC(DM) MR",
                     "gap closed"});
    for (const std::string &name : ablationBenchmarks(opts)) {
        const BenchmarkCase bench = paperBenchmark(name, trace_scale);
        // The layout is computed once for the direct-mapped cache and
        // then *measured* at every associativity, isolating how the
        // hardware forgives placement errors.
        EvalOptions dm = evalOptionsFrom(opts);
        dm.cache.associativity = 1;
        const ProfileBundle bundle(bench, dm);
        const Gbsc gbsc;
        const DefaultPlacement def;
        const PlacementContext ctx = bundle.makeContext();
        const Layout gbsc_layout = gbsc.place(ctx);
        const Layout def_layout = def.place(ctx);
        for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
            std::cerr << name << " " << assoc << "-way ...\n";
            CacheConfig cache = dm.cache;
            cache.associativity = assoc;
            cache.validate();
            const double def_mr = layoutMissRate(
                bundle.program(), def_layout, bundle.testStream(),
                cache);
            const double gbsc_mr = layoutMissRate(
                bundle.program(), gbsc_layout, bundle.testStream(),
                cache);
            const std::string gap =
                def_mr > 0.0
                    ? fmtPercent((def_mr - gbsc_mr) / def_mr, 1)
                    : "-";
            table.addRow({name, std::to_string(assoc) + "-way",
                          fmtPercent(def_mr), fmtPercent(gbsc_mr),
                          gap});
        }
    }
    table.render(std::cout,
                 "Ablation: associativity at fixed 8KB capacity "
                 "(layout optimised for 1-way)");
    std::cout << "\nSection 6's motivation: associativity absorbs "
                 "conflicts, shrinking (but not erasing) the benefit "
                 "of conflict-aware placement.\n";
    return 0;
}
