/**
 * @file
 * Ablation of the perturbation scale s (Section 5.1; Blackwell: s as
 * low as 0.01 elicits most of the variation, s up to 2.0 does not
 * degrade the average much). Sweeps s and reports GBSC's miss-rate
 * spread over perturbed profiles.
 */

#include "ablation_common.hh"

#include "topo/util/stats.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    using namespace topo::bench;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_perturbation: sweep the noise scale s.\n"
                     "  --benchmark=NAME --repetitions=N "
                     "--trace-scale=F\n";
        return 0;
    }
    const double trace_scale = opts.getDouble("trace-scale", 0.5);
    const std::size_t reps =
        static_cast<std::size_t>(opts.getInt("repetitions", 15));
    const std::string name = opts.getString("benchmark", "go");

    std::cerr << "profiling " << name << " ...\n";
    const BenchmarkCase bench = paperBenchmark(name, trace_scale);
    const EvalOptions eval = evalOptionsFrom(opts);
    const ProfileBundle bundle(bench, eval);
    const Gbsc gbsc;

    TextTable table({"s", "MR min", "MR mean", "MR max", "MR stddev"});
    for (double s : {0.0, 0.01, 0.1, 0.5, 2.0}) {
        std::cerr << "s = " << s << " ...\n";
        ComparisonOptions comparison;
        comparison.repetitions = reps;
        comparison.scale = s;
        const auto results = runComparison(bundle, {&gbsc}, comparison);
        const std::vector<double> &mrs = results[0].perturbed;
        table.addRow({fmtDouble(s, 2),
                      fmtPercent(percentile(mrs, 0.0)),
                      fmtPercent(mean(mrs)),
                      fmtPercent(percentile(mrs, 100.0)),
                      fmtPercent(sampleStddev(mrs))});
    }
    table.render(std::cout,
                 "Ablation: perturbation scale s on " + name +
                     " (GBSC, " + std::to_string(reps) +
                     " repetitions; paper uses s = 0.1)");
    return 0;
}
