/**
 * @file
 * Reproduces the Section 5.1 padding anecdote: take an optimised
 * layout of perl and pad every procedure by one cache line (32 bytes)
 * of trailing empty space. In the paper this trivial change moved the
 * miss rate from 3.8% to 5.4%. We sweep several pad amounts to show
 * how discontinuous the optimisation target is.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "section51_padding: per-procedure padding vs miss "
                     "rate.\n  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const std::string name = opts.getString("benchmark", "perl");
    std::cerr << "profiling " << name << " ...\n";
    const BenchmarkCase bench =
        paperBenchmark(name, traceScaleFrom(opts));
    const ProfileBundle bundle(bench, eval);
    const Gbsc gbsc;
    const DefaultPlacement def;
    const Layout base = gbsc.place(bundle.makeContext());
    const Layout default_layout = def.place(bundle.makeContext());
    const double base_mr = bundle.testMissRate(base);
    const double default_mr = bundle.testMissRate(default_layout);
    // The placement-sensitive part of the miss rate is bounded by the
    // default-vs-optimised gap; report the padding swing against it.
    const double surface = default_mr - base_mr;

    TextTable table({"layout", "pad bytes", "miss rate",
                     "GBSC gain destroyed"});
    table.addRow({"GBSC", "0", fmtPercent(base_mr), "0%"});
    for (std::uint32_t pad : {32u, 64u, 96u, 128u}) {
        const Layout padded =
            Layout::withPadding(base, bundle.program(), pad,
                                eval.cache.line_bytes);
        const double mr = bundle.testMissRate(padded);
        const std::string destroyed =
            surface > 0.0
                ? fmtPercent((mr - base_mr) / surface, 0)
                : std::string("-");
        table.addRow({"GBSC", std::to_string(pad), fmtPercent(mr),
                      destroyed});
    }
    table.addRow({"default", "0", fmtPercent(default_mr), "100%"});
    for (std::uint32_t pad : {32u, 64u}) {
        const Layout padded = Layout::withPadding(
            default_layout, bundle.program(), pad,
            eval.cache.line_bytes);
        table.addRow({"default", std::to_string(pad),
                      fmtPercent(bundle.testMissRate(padded)), "-"});
    }
    table.render(std::cout,
                 "Section 5.1: one-line padding swings the miss rate (" +
                     name + ", " + eval.cache.describe() + ")");
    std::cout << "\nPaper: perl went from 3.8% to 5.4% with a single "
                 "32-byte pad after every procedure — a trivial layout "
                 "change undoing the placement's careful alignments.\n";
    return 0;
}
