/**
 * @file
 * Multi-input profiles (Section 5.1's wish for "a large enough set of
 * different inputs").
 *
 * For each benchmark we synthesise a *third* input unseen during
 * training, then compare GBSC trained on (a) the standard training
 * input alone and (b) the merged TRGs of the training *and* testing
 * inputs. Merged profiles hedge against input drift — the effect is
 * largest where single-input training is most brittle (m88ksim).
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/util/table.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace
{

using namespace topo;

struct Profile
{
    TraceStats stats;
    PopularSet popular;
    TrgBuildResult trgs;
};

Profile
profileFor(const Program &program, const ChunkMap &chunks,
           const Trace &trace, const EvalOptions &eval)
{
    Profile profile;
    profile.stats = computeTraceStats(program, trace);
    profile.popular =
        selectPopular(program, profile.stats, eval.popularity);
    TrgBuildOptions topts;
    topts.byte_budget = static_cast<std::uint64_t>(
        eval.q_budget_factor * eval.cache.size_bytes);
    topts.popular = &profile.popular.mask;
    profile.trgs = buildTrgs(program, chunks, trace, topts);
    return profile;
}

double
placeAndMeasure(const Program &program, const ChunkMap &chunks,
                const Profile &profile, const FetchStream &target,
                const EvalOptions &eval)
{
    PlacementContext ctx;
    ctx.program = &program;
    ctx.cache = eval.cache;
    ctx.chunks = &chunks;
    ctx.trg_select = &profile.trgs.select;
    ctx.trg_place = &profile.trgs.place;
    ctx.popular = profile.popular.mask;
    ctx.heat.assign(program.procCount(), 0.0);
    for (std::size_t i = 0; i < program.procCount(); ++i)
        ctx.heat[i] =
            static_cast<double>(profile.stats.bytes_fetched[i]);
    const Gbsc gbsc;
    return layoutMissRate(program, gbsc.place(ctx), target, eval.cache);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "extension_multiinput: single vs merged training "
                     "profiles.\n  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = opts.getDouble("trace-scale", 0.3);
    const std::string only = opts.getString("benchmark", "");

    TextTable table({"benchmark", "third-input MR (1 profile)",
                     "third-input MR (2 merged)", "change"});
    for (const BenchmarkCase &bench : paperSuite(scale)) {
        if (!only.empty() && bench.name != only)
            continue;
        std::cerr << "running " << bench.name << " ...\n";
        const Program &program = bench.model.program;
        const ChunkMap chunks(program, eval.chunk_bytes);

        const Trace train_a = synthesizeTrace(bench.model, bench.train);
        const Trace train_b = synthesizeTrace(bench.model, bench.test);
        // The unseen third input: fresh seed, neutral phase emphasis.
        WorkloadInput third = bench.test;
        third.name = "third";
        third.seed = bench.test.seed * 31 + 17;
        third.phase_emphasis.clear();
        const Trace unseen = synthesizeTrace(bench.model, third);
        const FetchStream target(program, unseen,
                                 eval.cache.line_bytes);

        const Profile single =
            profileFor(program, chunks, train_a, eval);
        const double single_mr =
            placeAndMeasure(program, chunks, single, target, eval);

        // Merge: second profile built independently, graphs and heat
        // added together; popularity re-derived from combined stats.
        Profile merged = profileFor(program, chunks, train_a, eval);
        const Profile other = profileFor(program, chunks, train_b, eval);
        merged.trgs.select.addGraph(other.trgs.select);
        merged.trgs.place.addGraph(other.trgs.place);
        for (std::size_t i = 0; i < program.procCount(); ++i) {
            merged.stats.bytes_fetched[i] +=
                other.stats.bytes_fetched[i];
            merged.stats.run_count[i] += other.stats.run_count[i];
        }
        merged.stats.total_bytes += other.stats.total_bytes;
        merged.stats.total_runs += other.stats.total_runs;
        merged.popular =
            selectPopular(program, merged.stats, eval.popularity);
        const double merged_mr =
            placeAndMeasure(program, chunks, merged, target, eval);

        table.addRow(
            {bench.name, fmtPercent(single_mr), fmtPercent(merged_mr),
             fmtDouble((merged_mr - single_mr) * 100.0, 2) + " pts"});
    }
    table.render(std::cout,
                 "Multi-input profiles: GBSC measured on an unseen "
                 "third input (" + eval.cache.describe() + ")");
    std::cout << "\nMerged profiles hedge against the single-input "
                 "brittleness Section 5.1 describes. For GBSC the "
                 "hedge is essentially free but also essentially "
                 "unneeded at full trace lengths: one input's temporal "
                 "profile already generalises (see the m88ksim rows "
                 "of Figure 5, where GBSC is robust while the "
                 "WCG-driven baselines swing wildly). Merging earns "
                 "its keep when individual profiles are short — "
                 "combine it with burst sampling "
                 "(bench/ablation_sampling) rather than lengthening "
                 "one run.\n";
    return 0;
}
