/**
 * @file
 * Reproduces Figure 5: instruction-cache miss-rate distributions for
 * PH, HKC, and GBSC over 40 randomly perturbed profiles (s = 0.1) on
 * each of the six benchmarks, plus the non-perturbed miss rate per
 * algorithm and the default layout's rate.
 *
 * Knobs: --repetitions (default 40), --scale (default 0.1),
 * --trace-scale, --benchmark=<name> to run a single panel, plus the
 * standard cache/profile knobs.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/profile/perturb.hh"
#include "topo/util/options.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "figure5_missrates: reproduce Figure 5.\n"
                     "  --repetitions=N --scale=F --benchmark=NAME\n"
                     "  --trace-scale=F --cache-kb=N --coverage=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double trace_scale = traceScaleFrom(opts);
    ComparisonOptions comparison;
    comparison.repetitions = static_cast<std::size_t>(
        opts.getInt("repetitions", 40));
    comparison.scale = opts.getDouble("scale", kPaperPerturbScale);
    const std::string only = opts.getString("benchmark", "");

    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const DefaultPlacement def;
    const std::vector<const PlacementAlgorithm *> algos{&ph, &hkc, &gbsc};

    std::cout << "Figure 5: miss-rate distributions over "
              << comparison.repetitions << " perturbed profiles (s = "
              << comparison.scale << "), cache " << eval.cache.describe()
              << "\n\n";
    for (const BenchmarkCase &bench : paperSuite(trace_scale)) {
        if (!only.empty() && bench.name != only)
            continue;
        std::cerr << "running " << bench.name << " ...\n";
        const ProfileBundle bundle(bench, eval);
        const double default_mr =
            bundle.testMissRate(def.place(bundle.makeContext()));
        const auto results = runComparison(bundle, algos, comparison);
        printFigure5Panel(std::cout, bench.name, default_mr, results);
    }
    std::cout << "Paper's non-perturbed miss rates (8KB DM): lower is "
                 "better, GBSC lowest everywhere except m88ksim (bad "
                 "training input).\n";
    return 0;
}
