/**
 * @file
 * Ablation of the target cache size (Section 5.2: "we also
 * experimented with smaller cache sizes and obtained similar
 * results"). Sweeps 4/8/16 KB direct-mapped caches; the profile and
 * the placement both retarget each size.
 */

#include "ablation_common.hh"

#include "topo/placement/pettis_hansen.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    using namespace topo::bench;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_cachesize: sweep the target cache size.\n"
                     "  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const double trace_scale = opts.getDouble("trace-scale", 0.5);
    TextTable table({"benchmark", "cache", "default MR", "PH MR",
                     "GBSC MR"});
    for (const std::string &name : ablationBenchmarks(opts)) {
        const BenchmarkCase bench = paperBenchmark(name, trace_scale);
        for (std::uint32_t kb : {4u, 8u, 16u}) {
            std::cerr << name << " " << kb << "KB ...\n";
            EvalOptions eval = evalOptionsFrom(opts);
            eval.cache.size_bytes = kb * 1024;
            eval.cache.validate();
            const ProfileBundle bundle(bench, eval);
            const PlacementContext ctx = bundle.makeContext();
            const DefaultPlacement def;
            const PettisHansen ph;
            const Gbsc gbsc;
            table.addRow(
                {name, std::to_string(kb) + "KB",
                 fmtPercent(bundle.testMissRate(def.place(ctx))),
                 fmtPercent(bundle.testMissRate(ph.place(ctx))),
                 fmtPercent(bundle.testMissRate(gbsc.place(ctx)))});
        }
    }
    table.render(std::cout,
                 "Ablation: cache size (paper evaluates 8KB; smaller "
                 "caches reported similar)");
    return 0;
}
