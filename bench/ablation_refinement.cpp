/**
 * @file
 * Ablation: metric-driven refinement on top of each initial placement.
 *
 * Figure 6 licenses optimising the TRG metric directly; this bench
 * quantifies how much local search recovers from each starting point
 * (the default layout, PH, and GBSC) — and how close greedy GBSC
 * already is to a local optimum of its own metric.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/placement/refine.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_refinement: local search over offsets.\n"
                     "  --benchmark=NAME --trace-scale=F --passes=N\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = opts.getDouble("trace-scale", 0.4);
    RefineOptions refine_opts;
    refine_opts.max_passes =
        static_cast<std::size_t>(opts.getInt("passes", 4));
    const std::string only = opts.getString("benchmark", "");

    const DefaultPlacement def;
    const PettisHansen ph;
    const Gbsc gbsc;

    TextTable table({"benchmark", "start", "metric before",
                     "metric after", "moves", "test MR before",
                     "test MR after"});
    for (const BenchmarkCase &bench : paperSuite(scale)) {
        if (!only.empty() && bench.name != only)
            continue;
        std::cerr << "running " << bench.name << " ...\n";
        const ProfileBundle bundle(bench, eval);
        const PlacementContext ctx = bundle.makeContext();
        for (const PlacementAlgorithm *algo :
             std::initializer_list<const PlacementAlgorithm *>{
                 &def, &ph, &gbsc}) {
            const Layout base = algo->place(ctx);
            const RefineResult result =
                refineLayout(ctx, base, refine_opts);
            table.addRow({bench.name, algo->name(),
                          fmtCount(static_cast<std::uint64_t>(
                              result.initial_metric)),
                          fmtCount(static_cast<std::uint64_t>(
                              result.final_metric)),
                          std::to_string(result.moves),
                          fmtPercent(bundle.testMissRate(base)),
                          fmtPercent(
                              bundle.testMissRate(result.layout))});
        }
    }
    table.render(std::cout,
                 "Refinement ablation (best-improvement offset moves, "
                 "up to " +
                     std::to_string(refine_opts.max_passes) +
                     " passes)");
    std::cout << "\nGBSC rows show how close the paper's greedy "
                 "algorithm already is to a local optimum of its own "
                 "conflict metric; default/PH rows show how much of "
                 "the gap pure metric descent can close without the "
                 "TRG-driven selection order.\n";
    return 0;
}
