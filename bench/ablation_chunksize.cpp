/**
 * @file
 * Ablation of the TRG_place chunk size (Section 4.1: "a chunk size of
 * 256 bytes works well"). Sweeps 64..1024 bytes.
 */

#include "ablation_common.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    using namespace topo::bench;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_chunksize: sweep the TRG_place chunk "
                     "size.\n  --benchmark=NAME --trace-scale=F\n";
        return 0;
    }
    const double trace_scale = opts.getDouble("trace-scale", 0.5);
    TextTable table({"benchmark", "chunk bytes", "GBSC MR"});
    for (const std::string &name : ablationBenchmarks(opts)) {
        const BenchmarkCase bench = paperBenchmark(name, trace_scale);
        for (std::uint32_t chunk : {64u, 128u, 256u, 512u, 1024u}) {
            std::cerr << name << " chunk " << chunk << " ...\n";
            EvalOptions eval = evalOptionsFrom(opts);
            eval.chunk_bytes = chunk;
            table.addRow({name, std::to_string(chunk),
                          fmtPercent(gbscMissRate(bench, eval))});
        }
    }
    table.render(std::cout,
                 "Ablation: TRG_place chunk size (paper default: 256 "
                 "bytes)");
    return 0;
}
