/**
 * @file
 * Ablation: profile sampling rate vs placement quality.
 *
 * Section 4.4's instrumented executables run ~25x slower; burst
 * sampling cuts that cost proportionally. This bench builds the
 * profile (TRGs and popularity) from a sampled training trace and
 * measures the resulting GBSC layout on the *full* test trace, across
 * sampling fractions.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/trace/sampling.hh"
#include "topo/util/table.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace
{

using namespace topo;

double
gbscFromSampledProfile(const Program &program, const Trace &sampled_train,
                       const Trace &full_test, const EvalOptions &eval)
{
    const ChunkMap chunks(program, eval.chunk_bytes);
    const TraceStats stats = computeTraceStats(program, sampled_train);
    const PopularSet popular =
        selectPopular(program, stats, eval.popularity);
    TrgBuildOptions topts;
    topts.byte_budget = static_cast<std::uint64_t>(
        eval.q_budget_factor * eval.cache.size_bytes);
    topts.popular = &popular.mask;
    const TrgBuildResult trgs =
        buildTrgs(program, chunks, sampled_train, topts);
    PlacementContext ctx;
    ctx.program = &program;
    ctx.cache = eval.cache;
    ctx.chunks = &chunks;
    ctx.trg_select = &trgs.select;
    ctx.trg_place = &trgs.place;
    ctx.popular = popular.mask;
    ctx.heat.assign(program.procCount(), 0.0);
    for (std::size_t i = 0; i < program.procCount(); ++i)
        ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);
    const Gbsc gbsc;
    const Layout layout = gbsc.place(ctx);
    const FetchStream stream(program, full_test, eval.cache.line_bytes);
    return layoutMissRate(program, layout, stream, eval.cache);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_sampling: profile sampling fraction vs "
                     "GBSC quality.\n  --benchmark=NAME "
                     "--trace-scale=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = opts.getDouble("trace-scale", 0.4);
    const std::string only = opts.getString("benchmark", "");

    TextTable table({"benchmark", "profile fraction", "train runs kept",
                     "GBSC MR (full test trace)"});
    std::vector<std::string> names{"go", "perl", "vortex"};
    if (!only.empty())
        names = {only};
    for (const std::string &name : names) {
        const BenchmarkCase bench = paperBenchmark(name, scale);
        const Trace train = synthesizeTrace(bench.model, bench.train);
        const Trace test = synthesizeTrace(bench.model, bench.test);
        for (double fraction : {1.0, 0.3, 0.1, 0.03, 0.01}) {
            std::cerr << name << " fraction " << fraction << " ...\n";
            const Trace sampled = burstSampleFraction(train, fraction);
            const double mr = gbscFromSampledProfile(
                bench.model.program, sampled, test, eval);
            table.addRow({name, fmtDouble(fraction, 2),
                          fmtCount(sampled.size()), fmtPercent(mr)});
        }
    }
    table.render(std::cout,
                 "Ablation: burst-sampled profiles (2000-run bursts); "
                 "the Section 4.4 instrumentation cost shrinks with "
                 "the fraction");
    return 0;
}
