/**
 * @file
 * Exercises the Section 6 extension: placement for a 2-way LRU
 * set-associative cache driven by the pair database D(p,{r,s}).
 *
 * For each benchmark we measure, on an 8KB 2-way cache: the default
 * layout, the direct-mapped GBSC layout (computed for the DM cache of
 * the same size, then run on the 2-way cache), and the GBSC-SA layout
 * that uses D. The section has no figure in the paper; the expected
 * shape is that both optimised layouts beat the default and GBSC-SA
 * is competitive with (or better than) the mis-targeted DM layout.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/gbsc_setassoc.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "section6_setassoc: 2-way set-associative "
                     "extension.\n  --benchmark=NAME --trace-scale=F "
                     "--pair-window=N\n";
        return 0;
    }
    // Shorter traces by default: the pair database is the expensive
    // part (documented cap in DESIGN.md).
    const double trace_scale =
        opts.getDouble("trace-scale", 0.3);
    const std::string only = opts.getString("benchmark", "");

    EvalOptions two_way = evalOptionsFrom(opts);
    two_way.cache.associativity = 2;
    two_way.cache.validate();
    two_way.build_pairs = true;
    two_way.pair_window = static_cast<std::uint32_t>(
        opts.getInt("pair-window", 12));
    two_way.pair_prune = opts.getDouble("pair-prune", 2.0);

    EvalOptions direct = two_way;
    direct.cache.associativity = 1;
    direct.build_pairs = false;

    const DefaultPlacement def;
    const Gbsc gbsc;
    const GbscSetAssoc gbsc_sa;

    TextTable table({"benchmark", "default MR", "GBSC(DM) MR",
                     "GBSC-SA MR", "pairs in D"});
    for (const BenchmarkCase &bench : paperSuite(trace_scale)) {
        if (!only.empty() && bench.name != only)
            continue;
        std::cerr << "running " << bench.name << " ...\n";
        // DM-targeted placement (profiles built for the DM cache).
        const ProfileBundle dm_bundle(bench, direct);
        const Layout dm_layout = gbsc.place(dm_bundle.makeContext());
        // 2-way-targeted placement with the pair database.
        const ProfileBundle sa_bundle(bench, two_way);
        const PlacementContext sa_ctx = sa_bundle.makeContext();
        const Layout sa_layout = gbsc_sa.place(sa_ctx);
        const Layout def_layout = def.place(sa_ctx);
        table.addRow({bench.name,
                      fmtPercent(sa_bundle.testMissRate(def_layout)),
                      fmtPercent(sa_bundle.testMissRate(dm_layout)),
                      fmtPercent(sa_bundle.testMissRate(sa_layout)),
                      std::to_string(sa_bundle.pairs().size())});
    }
    table.render(std::cout,
                 "Section 6: placement for " +
                     two_way.cache.describe());
    std::cout << "\nD built with pair window "
              << two_way.pair_window << ", pruned below "
              << two_way.pair_prune << ".\n";
    return 0;
}
