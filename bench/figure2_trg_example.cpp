/**
 * @file
 * Reproduces Figure 2: the TRG built from execution trace #2 of the
 * Figure 1 program. The WCG edges survive with (nearly doubled)
 * weights and two new sibling edges appear — (X,Z) and (Y,Z) — while
 * (X,Y) stays (almost) absent because the phased trace never
 * interleaves X with Y.
 */

#include <iostream>

#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/util/table.hh"
#include "topo/workload/figure1.hh"

int
main()
{
    using namespace topo;
    const Figure1Example ex = makeFigure1Example();
    const Trace t2 = ex.trace2();
    const ChunkMap chunks(ex.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 2 * ex.cache.size_bytes;
    const TrgBuildResult trg = buildTrgs(ex.program, chunks, t2, opts);
    const WeightedGraph wcg = buildWcg(ex.program, t2);

    const char *names = "MXYZ";
    TextTable table({"edge", "WCG weight", "TRG weight", "note"});
    for (ProcId a = 0; a < 4; ++a) {
        for (ProcId b = a + 1; b < 4; ++b) {
            const double w_wcg = wcg.weight(a, b);
            const double w_trg = trg.select.weight(a, b);
            if (w_wcg == 0.0 && w_trg == 0.0)
                continue;
            std::string note;
            if (w_wcg == 0.0 && w_trg > 0.0)
                note = "sibling interleaving: TRG only";
            table.addRow({std::string(1, names[a]) + "-" + names[b],
                          fmtDouble(w_wcg, 0), fmtDouble(w_trg, 0),
                          note});
        }
    }
    table.render(std::cout, "Figure 2: TRG of trace #2 vs its WCG");
    std::cout << "\nPaper: TRG weights are nearly double the classic "
                 "call counts (our WCG column already counts both "
                 "calls and returns, so TRG ~= WCG here, one less per "
                 "edge since the first reference exploits no reuse); "
                 "the extra edges show interleaving of (X,Z) and "
                 "(Y,Z) but not (X,Y).\n";
    return 0;
}
