/**
 * @file
 * Section 5.2's exclusion rationale: "we use only five of the eight
 * SPECint95 benchmarks because the other three (compress, ijpeg, and
 * xlisp) are uninteresting in that all have small instruction working
 * sets that do equally well under any reasonable procedure-placement
 * algorithm."
 *
 * This bench builds compress/ijpeg/xlisp-like models — small hot sets
 * that fit the cache — and shows exactly that: every algorithm,
 * including the default layout, lands within noise of the cold-miss
 * floor.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/util/table.hh"
#include "topo/workload/synthetic_program.hh"

namespace
{

using namespace topo;

BenchmarkCase
excludedCase(const char *name, std::uint32_t procs,
             std::uint64_t total_kb, std::uint32_t popular,
             std::uint64_t popular_kb, std::uint64_t seed,
             double trace_scale)
{
    SyntheticSpec spec;
    spec.name = name;
    spec.proc_count = procs;
    spec.total_bytes = total_kb * 1024;
    spec.popular_count = popular;
    spec.popular_bytes = popular_kb * 1024;
    spec.phase_count = 2;
    spec.ranks = 3;
    spec.seed = seed;
    BenchmarkCase bench;
    bench.name = name;
    bench.model = buildSyntheticWorkload(spec);
    bench.train.seed = seed + 1;
    bench.test.seed = seed + 2;
    bench.train.target_runs = bench.test.target_runs =
        static_cast<std::uint64_t>(400000 * trace_scale);
    return bench;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "section52_excluded: why compress/ijpeg/xlisp "
                     "were excluded.\n  --trace-scale=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = opts.getDouble("trace-scale", 1.0);

    // Hot working sets well under the 8KB cache; text sizes loosely
    // modelled on the SPECint95 binaries.
    const BenchmarkCase cases[] = {
        excludedCase("compress", 60, 80, 6, 6, 901, scale),
        excludedCase("ijpeg", 300, 400, 10, 7, 902, scale),
        excludedCase("xlisp", 350, 250, 12, 7, 903, scale),
    };

    const DefaultPlacement def;
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    TextTable table({"benchmark", "popular bytes", "default MR",
                     "PH MR", "HKC MR", "GBSC MR"});
    for (const BenchmarkCase &bench : cases) {
        std::cerr << "running " << bench.name << " ...\n";
        const ProfileBundle bundle(bench, eval);
        const PlacementContext ctx = bundle.makeContext();
        table.addRow({bench.name, fmtBytes(bundle.popular().bytes),
                      fmtPercent(bundle.testMissRate(def.place(ctx))),
                      fmtPercent(bundle.testMissRate(ph.place(ctx))),
                      fmtPercent(bundle.testMissRate(hkc.place(ctx))),
                      fmtPercent(bundle.testMissRate(gbsc.place(ctx)))});
    }
    table.render(std::cout,
                 "Section 5.2: the excluded benchmarks — hot sets "
                 "that fit the cache (" + eval.cache.describe() + ")");
    std::cout << "\nPaper: compress, ijpeg, and xlisp \"do equally "
                 "well under any reasonable procedure-placement "
                 "algorithm\"; with the working set inside the cache "
                 "there are no conflict misses for placement to "
                 "remove.\n";
    return 0;
}
