/**
 * @file
 * Reproduces Figure 3: a step-by-step walkthrough of the ordered set
 * Q while the TRG is built from a prefix of trace #2. Each line shows
 * the referenced procedure, whether a previous occurrence existed,
 * the blocks found between the two occurrences (those whose edges are
 * incremented), and the queue contents afterwards.
 */

#include <iostream>

#include "topo/profile/trg_builder.hh"
#include "topo/util/table.hh"
#include "topo/workload/figure1.hh"

int
main()
{
    using namespace topo;
    const Figure1Example ex = makeFigure1Example();

    // A short prefix crossing the phase boundary so the walkthrough
    // shows both the X phase, the first Z call, and the switch to Y.
    Trace prefix(ex.program.procCount());
    const std::uint32_t size = ex.program.proc(ex.m).size_bytes;
    auto iteration = [&](ProcId leaf, bool call_z) {
        prefix.append(ex.m, 0, size);
        prefix.append(leaf, 0, size);
        prefix.append(ex.m, 0, size);
        if (call_z) {
            prefix.append(ex.z, 0, size);
            prefix.append(ex.m, 0, size);
        }
    };
    for (int i = 0; i < 5; ++i)
        iteration(ex.x, i % 4 == 3);
    for (int i = 5; i < 9; ++i)
        iteration(ex.y, i % 4 == 3);

    const ChunkMap chunks(ex.program, 256);
    const char *names = "MXYZ";
    TextTable steps({"step", "ref", "prev in Q?", "edges incremented",
                     "Q after (old -> new)"});
    std::size_t step = 0;
    TrgBuildOptions opts;
    opts.byte_budget = 2 * ex.cache.size_bytes;
    opts.observer = [&](ProcId p, bool had_prev,
                        const std::vector<BlockId> &between,
                        const TemporalQueue &q) {
        std::string edges;
        for (BlockId b : between) {
            if (!edges.empty())
                edges += ", ";
            edges += std::string("(") + names[p] + "," + names[b] + ")";
        }
        if (edges.empty())
            edges = had_prev ? "none (no interleaving)" : "none (first"
                                                          " reference)";
        std::string contents;
        for (BlockId b : q.contents()) {
            if (!contents.empty())
                contents += " ";
            contents += names[b];
        }
        steps.addRow({std::to_string(step++), std::string(1, names[p]),
                      had_prev ? "yes" : "no", edges, contents});
    };
    const TrgBuildResult trg =
        buildTrgs(ex.program, chunks, prefix, opts);

    steps.render(std::cout,
                 "Figure 3: Q processing during TRG construction "
                 "(trace #2 prefix)");
    std::cout << "\nResulting TRG edge weights:\n";
    TextTable weights({"edge", "weight"});
    for (ProcId a = 0; a < 4; ++a) {
        for (ProcId b = a + 1; b < 4; ++b) {
            if (trg.select.weight(a, b) > 0.0) {
                weights.addRow(
                    {std::string(1, names[a]) + "-" + names[b],
                     fmtDouble(trg.select.weight(a, b), 0)});
            }
        }
    }
    weights.render(std::cout);
    return 0;
}
