/**
 * @file
 * Reproduces Figure 1 and the Section 1 argument: the two execution
 * traces of the M/X/Y/Z program yield the *same* weighted call graph,
 * yet demand different layouts of the 3-line direct-mapped cache.
 *
 * Prints the WCG for both traces, then the simulated miss counts of
 * the two candidate layouts (X/Y on distinct lines vs X/Y sharing a
 * line) under both traces, showing the crossover the WCG cannot see —
 * and that GBSC, driven by the TRG, picks the right layout for each
 * trace while PH (WCG-driven) cannot distinguish them.
 */

#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/util/table.hh"
#include "topo/workload/figure1.hh"

int
main()
{
    using namespace topo;
    const Figure1Example ex = makeFigure1Example();
    const Trace t1 = ex.trace1();
    const Trace t2 = ex.trace2();

    // --- The WCG is identical for both traces.
    const WeightedGraph wcg1 = buildWcg(ex.program, t1);
    const WeightedGraph wcg2 = buildWcg(ex.program, t2);
    TextTable wcg({"edge", "weight (trace #1)", "weight (trace #2)"});
    const char *names = "MXYZ";
    for (ProcId a = 0; a < 4; ++a) {
        for (ProcId b = a + 1; b < 4; ++b) {
            if (wcg1.weight(a, b) == 0.0 && wcg2.weight(a, b) == 0.0)
                continue;
            wcg.addRow({std::string(1, names[a]) + "-" + names[b],
                        fmtDouble(wcg1.weight(a, b), 0),
                        fmtDouble(wcg2.weight(a, b), 0)});
        }
    }
    wcg.render(std::cout,
               "Figure 1: WCG edge weights (identical for both traces)");

    // --- The two candidate layouts of Section 1 (M fixed at line 0).
    // Layout A: X and Y on distinct lines, Z shares with X.
    // Layout B: X and Y share a line, Z gets its own line.
    const std::uint32_t lb = ex.cache.line_bytes;
    auto layout_from = [&](std::uint32_t ox, std::uint32_t oy,
                           std::uint32_t oz) {
        std::vector<std::uint32_t> offsets(4, 0);
        offsets[ex.m] = 0;
        offsets[ex.x] = ox;
        offsets[ex.y] = oy;
        offsets[ex.z] = oz;
        return Layout::fromCacheOffsets(ex.program,
                                        {ex.m, ex.x, ex.y, ex.z},
                                        offsets, lb, 3);
    };
    const Layout layout_a = layout_from(1, 2, 1);
    const Layout layout_b = layout_from(1, 1, 2);

    auto misses = [&](const Layout &layout, const Trace &t) {
        const FetchStream stream(ex.program, t, lb);
        return simulateLayout(ex.program, layout, stream, ex.cache)
            .misses;
    };
    TextTable sim({"layout", "misses on trace #1", "misses on trace #2"});
    sim.addRow({"A: X,Y distinct; Z with X",
                std::to_string(misses(layout_a, t1)),
                std::to_string(misses(layout_a, t2))});
    sim.addRow({"B: X,Y share; Z alone",
                std::to_string(misses(layout_b, t1)),
                std::to_string(misses(layout_b, t2))});
    sim.render(std::cout, "\nSection 1: the best layout depends on the "
                          "trace, not the WCG");

    // --- What the algorithms actually choose.
    const ChunkMap chunks(ex.program, lb);
    TrgBuildOptions topts;
    topts.byte_budget = 2 * ex.cache.size_bytes;
    TextTable algos({"trace", "algorithm", "misses"});
    for (const auto &[label, trace] :
         {std::pair<const char *, const Trace &>{"#1", t1},
          {"#2", t2}}) {
        const TrgBuildResult trg =
            buildTrgs(ex.program, chunks, trace, topts);
        const WeightedGraph trace_wcg = buildWcg(ex.program, trace);
        PlacementContext ctx;
        ctx.program = &ex.program;
        ctx.cache = ex.cache;
        ctx.chunks = &chunks;
        ctx.wcg = &trace_wcg;
        ctx.trg_select = &trg.select;
        ctx.trg_place = &trg.place;
        const PettisHansen ph;
        const Gbsc gbsc;
        algos.addRow({label, "PH",
                      std::to_string(misses(ph.place(ctx), trace))});
        algos.addRow({label, "GBSC",
                      std::to_string(misses(gbsc.place(ctx), trace))});
    }
    algos.render(std::cout, "\nAlgorithm choices on each trace");
    return 0;
}
