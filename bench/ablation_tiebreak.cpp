/**
 * @file
 * Section 5.1 sensitivity: ties between equal-weight working edges
 * are "decided arbitrarily" and affect all future merge steps. This
 * bench holds the profile fixed (s = 0) and varies only the random
 * tie breaker, showing how much of the outcome distribution comes
 * from tie decisions alone — the effect the multiplicative noise
 * methodology was designed to surface.
 */

#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/util/stats.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "ablation_tiebreak: layout spread from random tie "
                     "breaking alone.\n  --benchmark=NAME --seeds=N "
                     "--trace-scale=F\n";
        return 0;
    }
    const EvalOptions eval = evalOptionsFrom(opts);
    const double scale = opts.getDouble("trace-scale", 0.4);
    const std::size_t seeds =
        static_cast<std::size_t>(opts.getInt("seeds", 15));
    const std::string only = opts.getString("benchmark", "go");

    std::cerr << "profiling " << only << " ...\n";
    const BenchmarkCase bench = paperBenchmark(only, scale);
    const ProfileBundle bundle(bench, eval);
    const PlacementContext ctx = bundle.makeContext();

    TextTable table({"algorithm", "MR (deterministic ties)", "MR min",
                     "MR mean", "MR max", "MR stddev"});
    // PH row.
    {
        std::vector<double> mrs;
        for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
            const PettisHansen ph(seed);
            mrs.push_back(bundle.testMissRate(ph.place(ctx)));
        }
        const PettisHansen ph;
        table.addRow({"PH", fmtPercent(bundle.testMissRate(ph.place(ctx))),
                      fmtPercent(percentile(mrs, 0.0)),
                      fmtPercent(mean(mrs)),
                      fmtPercent(percentile(mrs, 100.0)),
                      fmtPercent(sampleStddev(mrs))});
    }
    // GBSC row.
    {
        std::vector<double> mrs;
        for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
            const Gbsc gbsc(seed);
            mrs.push_back(bundle.testMissRate(gbsc.place(ctx)));
        }
        const Gbsc gbsc;
        table.addRow({"GBSC",
                      fmtPercent(bundle.testMissRate(gbsc.place(ctx))),
                      fmtPercent(percentile(mrs, 0.0)),
                      fmtPercent(mean(mrs)),
                      fmtPercent(percentile(mrs, 100.0)),
                      fmtPercent(sampleStddev(mrs))});
    }
    table.render(std::cout,
                 "Section 5.1 sensitivity: tie-break randomisation on " +
                     only + " (" + std::to_string(seeds) +
                     " seeds, profile unperturbed)");
    std::cout << "\nPaper: \"ties resulting from identical edge weights "
                 "are decided arbitrarily... [and] affect not only the "
                 "current step, but all future steps.\"\n"
                 "Note the asymmetry: WCG edge weights are small "
                 "integers and tie constantly, so PH's outcome moves "
                 "with the tie breaker; TRG weights aggregate far more "
                 "events and essentially never tie exactly — a side "
                 "benefit of the richer temporal information.\n";
    return 0;
}
