# Empty dependencies file for topo_eval.
# This may be replaced when dependencies are built.
