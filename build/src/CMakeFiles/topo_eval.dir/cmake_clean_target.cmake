file(REMOVE_RECURSE
  "libtopo_eval.a"
)
