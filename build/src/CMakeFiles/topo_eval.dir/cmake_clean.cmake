file(REMOVE_RECURSE
  "CMakeFiles/topo_eval.dir/topo/eval/conflict_metric.cc.o"
  "CMakeFiles/topo_eval.dir/topo/eval/conflict_metric.cc.o.d"
  "CMakeFiles/topo_eval.dir/topo/eval/experiment.cc.o"
  "CMakeFiles/topo_eval.dir/topo/eval/experiment.cc.o.d"
  "CMakeFiles/topo_eval.dir/topo/eval/page_metric.cc.o"
  "CMakeFiles/topo_eval.dir/topo/eval/page_metric.cc.o.d"
  "CMakeFiles/topo_eval.dir/topo/eval/reports.cc.o"
  "CMakeFiles/topo_eval.dir/topo/eval/reports.cc.o.d"
  "libtopo_eval.a"
  "libtopo_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
