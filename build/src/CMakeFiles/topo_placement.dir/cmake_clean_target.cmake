file(REMOVE_RECURSE
  "libtopo_placement.a"
)
