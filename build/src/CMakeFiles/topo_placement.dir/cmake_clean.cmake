file(REMOVE_RECURSE
  "CMakeFiles/topo_placement.dir/topo/placement/cache_coloring.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/cache_coloring.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/exhaustive.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/exhaustive.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/gap_fill.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/gap_fill.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/gbsc.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/gbsc.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/gbsc_setassoc.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/gbsc_setassoc.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/merge_graph.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/merge_graph.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/pettis_hansen.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/pettis_hansen.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/placement.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/placement.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/popularity.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/popularity.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/refine.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/refine.cc.o.d"
  "CMakeFiles/topo_placement.dir/topo/placement/splitting.cc.o"
  "CMakeFiles/topo_placement.dir/topo/placement/splitting.cc.o.d"
  "libtopo_placement.a"
  "libtopo_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
