
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/placement/cache_coloring.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/cache_coloring.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/cache_coloring.cc.o.d"
  "/root/repo/src/topo/placement/exhaustive.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/exhaustive.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/exhaustive.cc.o.d"
  "/root/repo/src/topo/placement/gap_fill.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/gap_fill.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/gap_fill.cc.o.d"
  "/root/repo/src/topo/placement/gbsc.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/gbsc.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/gbsc.cc.o.d"
  "/root/repo/src/topo/placement/gbsc_setassoc.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/gbsc_setassoc.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/gbsc_setassoc.cc.o.d"
  "/root/repo/src/topo/placement/merge_graph.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/merge_graph.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/merge_graph.cc.o.d"
  "/root/repo/src/topo/placement/pettis_hansen.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/pettis_hansen.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/pettis_hansen.cc.o.d"
  "/root/repo/src/topo/placement/placement.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/placement.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/placement.cc.o.d"
  "/root/repo/src/topo/placement/popularity.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/popularity.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/popularity.cc.o.d"
  "/root/repo/src/topo/placement/refine.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/refine.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/refine.cc.o.d"
  "/root/repo/src/topo/placement/splitting.cc" "src/CMakeFiles/topo_placement.dir/topo/placement/splitting.cc.o" "gcc" "src/CMakeFiles/topo_placement.dir/topo/placement/splitting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_program.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
