# Empty dependencies file for topo_placement.
# This may be replaced when dependencies are built.
