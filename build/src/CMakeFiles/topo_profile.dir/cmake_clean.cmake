file(REMOVE_RECURSE
  "CMakeFiles/topo_profile.dir/topo/profile/chunk_map.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/chunk_map.cc.o.d"
  "CMakeFiles/topo_profile.dir/topo/profile/collector.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/collector.cc.o.d"
  "CMakeFiles/topo_profile.dir/topo/profile/pair_database.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/pair_database.cc.o.d"
  "CMakeFiles/topo_profile.dir/topo/profile/perturb.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/perturb.cc.o.d"
  "CMakeFiles/topo_profile.dir/topo/profile/temporal_queue.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/temporal_queue.cc.o.d"
  "CMakeFiles/topo_profile.dir/topo/profile/trg_accumulator.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/trg_accumulator.cc.o.d"
  "CMakeFiles/topo_profile.dir/topo/profile/trg_builder.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/trg_builder.cc.o.d"
  "CMakeFiles/topo_profile.dir/topo/profile/wcg_builder.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/wcg_builder.cc.o.d"
  "CMakeFiles/topo_profile.dir/topo/profile/weighted_graph.cc.o"
  "CMakeFiles/topo_profile.dir/topo/profile/weighted_graph.cc.o.d"
  "libtopo_profile.a"
  "libtopo_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
