file(REMOVE_RECURSE
  "libtopo_profile.a"
)
