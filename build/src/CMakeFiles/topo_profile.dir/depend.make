# Empty dependencies file for topo_profile.
# This may be replaced when dependencies are built.
