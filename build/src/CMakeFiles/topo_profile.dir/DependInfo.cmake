
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/profile/chunk_map.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/chunk_map.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/chunk_map.cc.o.d"
  "/root/repo/src/topo/profile/collector.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/collector.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/collector.cc.o.d"
  "/root/repo/src/topo/profile/pair_database.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/pair_database.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/pair_database.cc.o.d"
  "/root/repo/src/topo/profile/perturb.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/perturb.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/perturb.cc.o.d"
  "/root/repo/src/topo/profile/temporal_queue.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/temporal_queue.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/temporal_queue.cc.o.d"
  "/root/repo/src/topo/profile/trg_accumulator.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/trg_accumulator.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/trg_accumulator.cc.o.d"
  "/root/repo/src/topo/profile/trg_builder.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/trg_builder.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/trg_builder.cc.o.d"
  "/root/repo/src/topo/profile/wcg_builder.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/wcg_builder.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/wcg_builder.cc.o.d"
  "/root/repo/src/topo/profile/weighted_graph.cc" "src/CMakeFiles/topo_profile.dir/topo/profile/weighted_graph.cc.o" "gcc" "src/CMakeFiles/topo_profile.dir/topo/profile/weighted_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_program.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
