# Empty dependencies file for topo_workload.
# This may be replaced when dependencies are built.
