file(REMOVE_RECURSE
  "CMakeFiles/topo_workload.dir/topo/workload/figure1.cc.o"
  "CMakeFiles/topo_workload.dir/topo/workload/figure1.cc.o.d"
  "CMakeFiles/topo_workload.dir/topo/workload/microsuite.cc.o"
  "CMakeFiles/topo_workload.dir/topo/workload/microsuite.cc.o.d"
  "CMakeFiles/topo_workload.dir/topo/workload/paper_suite.cc.o"
  "CMakeFiles/topo_workload.dir/topo/workload/paper_suite.cc.o.d"
  "CMakeFiles/topo_workload.dir/topo/workload/skeleton.cc.o"
  "CMakeFiles/topo_workload.dir/topo/workload/skeleton.cc.o.d"
  "CMakeFiles/topo_workload.dir/topo/workload/synthetic_program.cc.o"
  "CMakeFiles/topo_workload.dir/topo/workload/synthetic_program.cc.o.d"
  "CMakeFiles/topo_workload.dir/topo/workload/trace_synthesizer.cc.o"
  "CMakeFiles/topo_workload.dir/topo/workload/trace_synthesizer.cc.o.d"
  "libtopo_workload.a"
  "libtopo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
