file(REMOVE_RECURSE
  "libtopo_workload.a"
)
