
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/workload/figure1.cc" "src/CMakeFiles/topo_workload.dir/topo/workload/figure1.cc.o" "gcc" "src/CMakeFiles/topo_workload.dir/topo/workload/figure1.cc.o.d"
  "/root/repo/src/topo/workload/microsuite.cc" "src/CMakeFiles/topo_workload.dir/topo/workload/microsuite.cc.o" "gcc" "src/CMakeFiles/topo_workload.dir/topo/workload/microsuite.cc.o.d"
  "/root/repo/src/topo/workload/paper_suite.cc" "src/CMakeFiles/topo_workload.dir/topo/workload/paper_suite.cc.o" "gcc" "src/CMakeFiles/topo_workload.dir/topo/workload/paper_suite.cc.o.d"
  "/root/repo/src/topo/workload/skeleton.cc" "src/CMakeFiles/topo_workload.dir/topo/workload/skeleton.cc.o" "gcc" "src/CMakeFiles/topo_workload.dir/topo/workload/skeleton.cc.o.d"
  "/root/repo/src/topo/workload/synthetic_program.cc" "src/CMakeFiles/topo_workload.dir/topo/workload/synthetic_program.cc.o" "gcc" "src/CMakeFiles/topo_workload.dir/topo/workload/synthetic_program.cc.o.d"
  "/root/repo/src/topo/workload/trace_synthesizer.cc" "src/CMakeFiles/topo_workload.dir/topo/workload/trace_synthesizer.cc.o" "gcc" "src/CMakeFiles/topo_workload.dir/topo/workload/trace_synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_program.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
