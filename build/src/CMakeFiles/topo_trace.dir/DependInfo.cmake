
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/trace/fetch_stream.cc" "src/CMakeFiles/topo_trace.dir/topo/trace/fetch_stream.cc.o" "gcc" "src/CMakeFiles/topo_trace.dir/topo/trace/fetch_stream.cc.o.d"
  "/root/repo/src/topo/trace/sampling.cc" "src/CMakeFiles/topo_trace.dir/topo/trace/sampling.cc.o" "gcc" "src/CMakeFiles/topo_trace.dir/topo/trace/sampling.cc.o.d"
  "/root/repo/src/topo/trace/trace.cc" "src/CMakeFiles/topo_trace.dir/topo/trace/trace.cc.o" "gcc" "src/CMakeFiles/topo_trace.dir/topo/trace/trace.cc.o.d"
  "/root/repo/src/topo/trace/trace_binary.cc" "src/CMakeFiles/topo_trace.dir/topo/trace/trace_binary.cc.o" "gcc" "src/CMakeFiles/topo_trace.dir/topo/trace/trace_binary.cc.o.d"
  "/root/repo/src/topo/trace/trace_io.cc" "src/CMakeFiles/topo_trace.dir/topo/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/topo_trace.dir/topo/trace/trace_io.cc.o.d"
  "/root/repo/src/topo/trace/trace_stats.cc" "src/CMakeFiles/topo_trace.dir/topo/trace/trace_stats.cc.o" "gcc" "src/CMakeFiles/topo_trace.dir/topo/trace/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_program.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
