file(REMOVE_RECURSE
  "libtopo_trace.a"
)
