file(REMOVE_RECURSE
  "CMakeFiles/topo_trace.dir/topo/trace/fetch_stream.cc.o"
  "CMakeFiles/topo_trace.dir/topo/trace/fetch_stream.cc.o.d"
  "CMakeFiles/topo_trace.dir/topo/trace/sampling.cc.o"
  "CMakeFiles/topo_trace.dir/topo/trace/sampling.cc.o.d"
  "CMakeFiles/topo_trace.dir/topo/trace/trace.cc.o"
  "CMakeFiles/topo_trace.dir/topo/trace/trace.cc.o.d"
  "CMakeFiles/topo_trace.dir/topo/trace/trace_binary.cc.o"
  "CMakeFiles/topo_trace.dir/topo/trace/trace_binary.cc.o.d"
  "CMakeFiles/topo_trace.dir/topo/trace/trace_io.cc.o"
  "CMakeFiles/topo_trace.dir/topo/trace/trace_io.cc.o.d"
  "CMakeFiles/topo_trace.dir/topo/trace/trace_stats.cc.o"
  "CMakeFiles/topo_trace.dir/topo/trace/trace_stats.cc.o.d"
  "libtopo_trace.a"
  "libtopo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
