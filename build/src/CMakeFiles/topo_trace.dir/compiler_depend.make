# Empty compiler generated dependencies file for topo_trace.
# This may be replaced when dependencies are built.
