file(REMOVE_RECURSE
  "CMakeFiles/topo_cache.dir/topo/cache/cache_config.cc.o"
  "CMakeFiles/topo_cache.dir/topo/cache/cache_config.cc.o.d"
  "CMakeFiles/topo_cache.dir/topo/cache/direct_mapped_cache.cc.o"
  "CMakeFiles/topo_cache.dir/topo/cache/direct_mapped_cache.cc.o.d"
  "CMakeFiles/topo_cache.dir/topo/cache/set_associative_cache.cc.o"
  "CMakeFiles/topo_cache.dir/topo/cache/set_associative_cache.cc.o.d"
  "CMakeFiles/topo_cache.dir/topo/cache/simulate.cc.o"
  "CMakeFiles/topo_cache.dir/topo/cache/simulate.cc.o.d"
  "libtopo_cache.a"
  "libtopo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
