file(REMOVE_RECURSE
  "libtopo_cache.a"
)
