# Empty compiler generated dependencies file for topo_cache.
# This may be replaced when dependencies are built.
