
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/cache/cache_config.cc" "src/CMakeFiles/topo_cache.dir/topo/cache/cache_config.cc.o" "gcc" "src/CMakeFiles/topo_cache.dir/topo/cache/cache_config.cc.o.d"
  "/root/repo/src/topo/cache/direct_mapped_cache.cc" "src/CMakeFiles/topo_cache.dir/topo/cache/direct_mapped_cache.cc.o" "gcc" "src/CMakeFiles/topo_cache.dir/topo/cache/direct_mapped_cache.cc.o.d"
  "/root/repo/src/topo/cache/set_associative_cache.cc" "src/CMakeFiles/topo_cache.dir/topo/cache/set_associative_cache.cc.o" "gcc" "src/CMakeFiles/topo_cache.dir/topo/cache/set_associative_cache.cc.o.d"
  "/root/repo/src/topo/cache/simulate.cc" "src/CMakeFiles/topo_cache.dir/topo/cache/simulate.cc.o" "gcc" "src/CMakeFiles/topo_cache.dir/topo/cache/simulate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_program.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
