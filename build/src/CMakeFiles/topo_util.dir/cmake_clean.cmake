file(REMOVE_RECURSE
  "CMakeFiles/topo_util.dir/topo/util/error.cc.o"
  "CMakeFiles/topo_util.dir/topo/util/error.cc.o.d"
  "CMakeFiles/topo_util.dir/topo/util/options.cc.o"
  "CMakeFiles/topo_util.dir/topo/util/options.cc.o.d"
  "CMakeFiles/topo_util.dir/topo/util/rng.cc.o"
  "CMakeFiles/topo_util.dir/topo/util/rng.cc.o.d"
  "CMakeFiles/topo_util.dir/topo/util/stats.cc.o"
  "CMakeFiles/topo_util.dir/topo/util/stats.cc.o.d"
  "CMakeFiles/topo_util.dir/topo/util/string_utils.cc.o"
  "CMakeFiles/topo_util.dir/topo/util/string_utils.cc.o.d"
  "CMakeFiles/topo_util.dir/topo/util/table.cc.o"
  "CMakeFiles/topo_util.dir/topo/util/table.cc.o.d"
  "libtopo_util.a"
  "libtopo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
