
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/util/error.cc" "src/CMakeFiles/topo_util.dir/topo/util/error.cc.o" "gcc" "src/CMakeFiles/topo_util.dir/topo/util/error.cc.o.d"
  "/root/repo/src/topo/util/options.cc" "src/CMakeFiles/topo_util.dir/topo/util/options.cc.o" "gcc" "src/CMakeFiles/topo_util.dir/topo/util/options.cc.o.d"
  "/root/repo/src/topo/util/rng.cc" "src/CMakeFiles/topo_util.dir/topo/util/rng.cc.o" "gcc" "src/CMakeFiles/topo_util.dir/topo/util/rng.cc.o.d"
  "/root/repo/src/topo/util/stats.cc" "src/CMakeFiles/topo_util.dir/topo/util/stats.cc.o" "gcc" "src/CMakeFiles/topo_util.dir/topo/util/stats.cc.o.d"
  "/root/repo/src/topo/util/string_utils.cc" "src/CMakeFiles/topo_util.dir/topo/util/string_utils.cc.o" "gcc" "src/CMakeFiles/topo_util.dir/topo/util/string_utils.cc.o.d"
  "/root/repo/src/topo/util/table.cc" "src/CMakeFiles/topo_util.dir/topo/util/table.cc.o" "gcc" "src/CMakeFiles/topo_util.dir/topo/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
