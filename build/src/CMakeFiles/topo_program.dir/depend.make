# Empty dependencies file for topo_program.
# This may be replaced when dependencies are built.
