file(REMOVE_RECURSE
  "CMakeFiles/topo_program.dir/topo/program/layout.cc.o"
  "CMakeFiles/topo_program.dir/topo/program/layout.cc.o.d"
  "CMakeFiles/topo_program.dir/topo/program/layout_io.cc.o"
  "CMakeFiles/topo_program.dir/topo/program/layout_io.cc.o.d"
  "CMakeFiles/topo_program.dir/topo/program/layout_script.cc.o"
  "CMakeFiles/topo_program.dir/topo/program/layout_script.cc.o.d"
  "CMakeFiles/topo_program.dir/topo/program/program.cc.o"
  "CMakeFiles/topo_program.dir/topo/program/program.cc.o.d"
  "CMakeFiles/topo_program.dir/topo/program/program_io.cc.o"
  "CMakeFiles/topo_program.dir/topo/program/program_io.cc.o.d"
  "libtopo_program.a"
  "libtopo_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
