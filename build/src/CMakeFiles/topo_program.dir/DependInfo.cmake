
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/program/layout.cc" "src/CMakeFiles/topo_program.dir/topo/program/layout.cc.o" "gcc" "src/CMakeFiles/topo_program.dir/topo/program/layout.cc.o.d"
  "/root/repo/src/topo/program/layout_io.cc" "src/CMakeFiles/topo_program.dir/topo/program/layout_io.cc.o" "gcc" "src/CMakeFiles/topo_program.dir/topo/program/layout_io.cc.o.d"
  "/root/repo/src/topo/program/layout_script.cc" "src/CMakeFiles/topo_program.dir/topo/program/layout_script.cc.o" "gcc" "src/CMakeFiles/topo_program.dir/topo/program/layout_script.cc.o.d"
  "/root/repo/src/topo/program/program.cc" "src/CMakeFiles/topo_program.dir/topo/program/program.cc.o" "gcc" "src/CMakeFiles/topo_program.dir/topo/program/program.cc.o.d"
  "/root/repo/src/topo/program/program_io.cc" "src/CMakeFiles/topo_program.dir/topo/program/program_io.cc.o" "gcc" "src/CMakeFiles/topo_program.dir/topo/program/program_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
