file(REMOVE_RECURSE
  "libtopo_program.a"
)
