# Empty compiler generated dependencies file for pettis_hansen_test.
# This may be replaced when dependencies are built.
