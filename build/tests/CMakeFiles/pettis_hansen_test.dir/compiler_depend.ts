# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pettis_hansen_test.
