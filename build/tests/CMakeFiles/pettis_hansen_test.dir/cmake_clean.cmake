file(REMOVE_RECURSE
  "CMakeFiles/pettis_hansen_test.dir/pettis_hansen_test.cc.o"
  "CMakeFiles/pettis_hansen_test.dir/pettis_hansen_test.cc.o.d"
  "pettis_hansen_test"
  "pettis_hansen_test.pdb"
  "pettis_hansen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pettis_hansen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
