# Empty compiler generated dependencies file for wcg_pair_test.
# This may be replaced when dependencies are built.
