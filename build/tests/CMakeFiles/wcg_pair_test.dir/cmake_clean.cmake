file(REMOVE_RECURSE
  "CMakeFiles/wcg_pair_test.dir/wcg_pair_test.cc.o"
  "CMakeFiles/wcg_pair_test.dir/wcg_pair_test.cc.o.d"
  "wcg_pair_test"
  "wcg_pair_test.pdb"
  "wcg_pair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcg_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
