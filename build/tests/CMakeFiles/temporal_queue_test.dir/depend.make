# Empty dependencies file for temporal_queue_test.
# This may be replaced when dependencies are built.
