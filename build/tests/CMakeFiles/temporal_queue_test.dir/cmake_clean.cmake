file(REMOVE_RECURSE
  "CMakeFiles/temporal_queue_test.dir/temporal_queue_test.cc.o"
  "CMakeFiles/temporal_queue_test.dir/temporal_queue_test.cc.o.d"
  "temporal_queue_test"
  "temporal_queue_test.pdb"
  "temporal_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
