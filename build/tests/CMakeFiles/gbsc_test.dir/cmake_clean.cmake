file(REMOVE_RECURSE
  "CMakeFiles/gbsc_test.dir/gbsc_test.cc.o"
  "CMakeFiles/gbsc_test.dir/gbsc_test.cc.o.d"
  "gbsc_test"
  "gbsc_test.pdb"
  "gbsc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
