# Empty dependencies file for gbsc_test.
# This may be replaced when dependencies are built.
