file(REMOVE_RECURSE
  "CMakeFiles/page_metric_test.dir/page_metric_test.cc.o"
  "CMakeFiles/page_metric_test.dir/page_metric_test.cc.o.d"
  "page_metric_test"
  "page_metric_test.pdb"
  "page_metric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
