file(REMOVE_RECURSE
  "CMakeFiles/trg_test.dir/trg_test.cc.o"
  "CMakeFiles/trg_test.dir/trg_test.cc.o.d"
  "trg_test"
  "trg_test.pdb"
  "trg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
