# Empty dependencies file for microsuite_test.
# This may be replaced when dependencies are built.
