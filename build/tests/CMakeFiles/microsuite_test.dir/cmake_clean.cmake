file(REMOVE_RECURSE
  "CMakeFiles/microsuite_test.dir/microsuite_test.cc.o"
  "CMakeFiles/microsuite_test.dir/microsuite_test.cc.o.d"
  "microsuite_test"
  "microsuite_test.pdb"
  "microsuite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microsuite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
