# Empty dependencies file for placement_common_test.
# This may be replaced when dependencies are built.
