file(REMOVE_RECURSE
  "CMakeFiles/placement_common_test.dir/placement_common_test.cc.o"
  "CMakeFiles/placement_common_test.dir/placement_common_test.cc.o.d"
  "placement_common_test"
  "placement_common_test.pdb"
  "placement_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
