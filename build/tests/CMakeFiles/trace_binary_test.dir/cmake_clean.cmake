file(REMOVE_RECURSE
  "CMakeFiles/trace_binary_test.dir/trace_binary_test.cc.o"
  "CMakeFiles/trace_binary_test.dir/trace_binary_test.cc.o.d"
  "trace_binary_test"
  "trace_binary_test.pdb"
  "trace_binary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_binary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
