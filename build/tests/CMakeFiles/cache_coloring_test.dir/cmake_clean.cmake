file(REMOVE_RECURSE
  "CMakeFiles/cache_coloring_test.dir/cache_coloring_test.cc.o"
  "CMakeFiles/cache_coloring_test.dir/cache_coloring_test.cc.o.d"
  "cache_coloring_test"
  "cache_coloring_test.pdb"
  "cache_coloring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_coloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
