file(REMOVE_RECURSE
  "CMakeFiles/figure1_story.dir/figure1_story.cpp.o"
  "CMakeFiles/figure1_story.dir/figure1_story.cpp.o.d"
  "figure1_story"
  "figure1_story.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_story.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
