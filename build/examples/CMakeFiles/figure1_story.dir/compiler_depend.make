# Empty compiler generated dependencies file for figure1_story.
# This may be replaced when dependencies are built.
