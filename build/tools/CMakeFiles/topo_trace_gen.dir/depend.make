# Empty dependencies file for topo_trace_gen.
# This may be replaced when dependencies are built.
