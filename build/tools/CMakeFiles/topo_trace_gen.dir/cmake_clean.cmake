file(REMOVE_RECURSE
  "CMakeFiles/topo_trace_gen.dir/topo_trace_gen.cpp.o"
  "CMakeFiles/topo_trace_gen.dir/topo_trace_gen.cpp.o.d"
  "topo_trace_gen"
  "topo_trace_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
