# Empty compiler generated dependencies file for topo_place.
# This may be replaced when dependencies are built.
