file(REMOVE_RECURSE
  "CMakeFiles/topo_place.dir/topo_place.cpp.o"
  "CMakeFiles/topo_place.dir/topo_place.cpp.o.d"
  "topo_place"
  "topo_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
