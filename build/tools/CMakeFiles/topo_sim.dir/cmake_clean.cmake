file(REMOVE_RECURSE
  "CMakeFiles/topo_sim.dir/topo_sim.cpp.o"
  "CMakeFiles/topo_sim.dir/topo_sim.cpp.o.d"
  "topo_sim"
  "topo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
