# Empty dependencies file for topo_compare.
# This may be replaced when dependencies are built.
