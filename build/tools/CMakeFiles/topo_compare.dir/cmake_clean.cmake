file(REMOVE_RECURSE
  "CMakeFiles/topo_compare.dir/topo_compare.cpp.o"
  "CMakeFiles/topo_compare.dir/topo_compare.cpp.o.d"
  "topo_compare"
  "topo_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
