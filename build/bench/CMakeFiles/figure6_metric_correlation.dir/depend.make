# Empty dependencies file for figure6_metric_correlation.
# This may be replaced when dependencies are built.
