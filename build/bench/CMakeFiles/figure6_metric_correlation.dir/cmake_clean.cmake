file(REMOVE_RECURSE
  "CMakeFiles/figure6_metric_correlation.dir/figure6_metric_correlation.cpp.o"
  "CMakeFiles/figure6_metric_correlation.dir/figure6_metric_correlation.cpp.o.d"
  "figure6_metric_correlation"
  "figure6_metric_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_metric_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
