# Empty compiler generated dependencies file for section51_padding.
# This may be replaced when dependencies are built.
