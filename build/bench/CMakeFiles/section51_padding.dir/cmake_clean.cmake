file(REMOVE_RECURSE
  "CMakeFiles/section51_padding.dir/section51_padding.cpp.o"
  "CMakeFiles/section51_padding.dir/section51_padding.cpp.o.d"
  "section51_padding"
  "section51_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section51_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
