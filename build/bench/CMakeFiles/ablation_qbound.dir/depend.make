# Empty dependencies file for ablation_qbound.
# This may be replaced when dependencies are built.
