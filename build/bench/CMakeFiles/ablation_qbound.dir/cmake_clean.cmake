file(REMOVE_RECURSE
  "CMakeFiles/ablation_qbound.dir/ablation_qbound.cpp.o"
  "CMakeFiles/ablation_qbound.dir/ablation_qbound.cpp.o.d"
  "ablation_qbound"
  "ablation_qbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
