# Empty compiler generated dependencies file for ablation_qbound.
# This may be replaced when dependencies are built.
