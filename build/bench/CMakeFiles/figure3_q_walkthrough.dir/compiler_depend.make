# Empty compiler generated dependencies file for figure3_q_walkthrough.
# This may be replaced when dependencies are built.
