file(REMOVE_RECURSE
  "CMakeFiles/figure3_q_walkthrough.dir/figure3_q_walkthrough.cpp.o"
  "CMakeFiles/figure3_q_walkthrough.dir/figure3_q_walkthrough.cpp.o.d"
  "figure3_q_walkthrough"
  "figure3_q_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_q_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
