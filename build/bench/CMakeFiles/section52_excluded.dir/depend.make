# Empty dependencies file for section52_excluded.
# This may be replaced when dependencies are built.
