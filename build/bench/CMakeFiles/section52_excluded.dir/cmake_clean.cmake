file(REMOVE_RECURSE
  "CMakeFiles/section52_excluded.dir/section52_excluded.cpp.o"
  "CMakeFiles/section52_excluded.dir/section52_excluded.cpp.o.d"
  "section52_excluded"
  "section52_excluded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section52_excluded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
