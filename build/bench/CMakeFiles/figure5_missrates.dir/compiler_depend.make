# Empty compiler generated dependencies file for figure5_missrates.
# This may be replaced when dependencies are built.
