file(REMOVE_RECURSE
  "CMakeFiles/figure5_missrates.dir/figure5_missrates.cpp.o"
  "CMakeFiles/figure5_missrates.dir/figure5_missrates.cpp.o.d"
  "figure5_missrates"
  "figure5_missrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
