file(REMOVE_RECURSE
  "CMakeFiles/ablation_chunksize.dir/ablation_chunksize.cpp.o"
  "CMakeFiles/ablation_chunksize.dir/ablation_chunksize.cpp.o.d"
  "ablation_chunksize"
  "ablation_chunksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
