# Empty compiler generated dependencies file for extension_multiinput.
# This may be replaced when dependencies are built.
