file(REMOVE_RECURSE
  "CMakeFiles/extension_multiinput.dir/extension_multiinput.cpp.o"
  "CMakeFiles/extension_multiinput.dir/extension_multiinput.cpp.o.d"
  "extension_multiinput"
  "extension_multiinput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multiinput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
