# Empty dependencies file for extension_splitting.
# This may be replaced when dependencies are built.
