file(REMOVE_RECURSE
  "CMakeFiles/extension_splitting.dir/extension_splitting.cpp.o"
  "CMakeFiles/extension_splitting.dir/extension_splitting.cpp.o.d"
  "extension_splitting"
  "extension_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
