# Empty dependencies file for figure1_wcg_ambiguity.
# This may be replaced when dependencies are built.
