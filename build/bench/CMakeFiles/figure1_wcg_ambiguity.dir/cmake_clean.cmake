file(REMOVE_RECURSE
  "CMakeFiles/figure1_wcg_ambiguity.dir/figure1_wcg_ambiguity.cpp.o"
  "CMakeFiles/figure1_wcg_ambiguity.dir/figure1_wcg_ambiguity.cpp.o.d"
  "figure1_wcg_ambiguity"
  "figure1_wcg_ambiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_wcg_ambiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
