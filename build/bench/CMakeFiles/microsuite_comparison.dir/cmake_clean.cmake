file(REMOVE_RECURSE
  "CMakeFiles/microsuite_comparison.dir/microsuite_comparison.cpp.o"
  "CMakeFiles/microsuite_comparison.dir/microsuite_comparison.cpp.o.d"
  "microsuite_comparison"
  "microsuite_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microsuite_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
