# Empty compiler generated dependencies file for microsuite_comparison.
# This may be replaced when dependencies are built.
