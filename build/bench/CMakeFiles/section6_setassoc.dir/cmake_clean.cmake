file(REMOVE_RECURSE
  "CMakeFiles/section6_setassoc.dir/section6_setassoc.cpp.o"
  "CMakeFiles/section6_setassoc.dir/section6_setassoc.cpp.o.d"
  "section6_setassoc"
  "section6_setassoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section6_setassoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
