# Empty dependencies file for section6_setassoc.
# This may be replaced when dependencies are built.
