# Empty dependencies file for section53_traintest.
# This may be replaced when dependencies are built.
