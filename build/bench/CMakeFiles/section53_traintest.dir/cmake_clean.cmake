file(REMOVE_RECURSE
  "CMakeFiles/section53_traintest.dir/section53_traintest.cpp.o"
  "CMakeFiles/section53_traintest.dir/section53_traintest.cpp.o.d"
  "section53_traintest"
  "section53_traintest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section53_traintest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
