file(REMOVE_RECURSE
  "CMakeFiles/extension_paging.dir/extension_paging.cpp.o"
  "CMakeFiles/extension_paging.dir/extension_paging.cpp.o.d"
  "extension_paging"
  "extension_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
