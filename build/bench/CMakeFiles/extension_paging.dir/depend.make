# Empty dependencies file for extension_paging.
# This may be replaced when dependencies are built.
