# Empty compiler generated dependencies file for figure2_trg_example.
# This may be replaced when dependencies are built.
