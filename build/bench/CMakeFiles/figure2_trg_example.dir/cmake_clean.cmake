file(REMOVE_RECURSE
  "CMakeFiles/figure2_trg_example.dir/figure2_trg_example.cpp.o"
  "CMakeFiles/figure2_trg_example.dir/figure2_trg_example.cpp.o.d"
  "figure2_trg_example"
  "figure2_trg_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_trg_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
